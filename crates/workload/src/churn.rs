//! Churn plans: scheduled membership and placement changes.
//!
//! A [`ChurnPlan`] is a time-ordered list of reconfiguration events — sites
//! joining, leaving (gracefully or by fail-stop) and variables being
//! re-homed — that the simulator executes as epoch'd view changes while the
//! workload runs. Plans are either scripted (parsed from a compact spec
//! string, see [`ChurnPlan::parse`]) or drawn from a Poisson process
//! ([`ChurnPlan::poisson`]); both are deterministic functions of their
//! inputs so churned runs replay bit-exactly.

use causal_types::{Error, Result, SimDuration, SimTime, SiteId, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One reconfiguration operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChurnOp {
    /// A new site joins the view and bootstraps by state transfer.
    Join(SiteId),
    /// A member drains in-flight traffic and leaves gracefully.
    Leave(SiteId),
    /// A member fail-stops and is removed from the view without draining
    /// (crash semantics: volatile state is lost at the instant of the
    /// event, the view change completes at the epoch boundary).
    CrashLeave(SiteId),
    /// Re-home `var`: remove `from` from its replica set (when it is one)
    /// and add `to`, with a state transfer seeding the new replica.
    Migrate {
        /// The migrated variable.
        var: VarId,
        /// The replica being vacated.
        from: SiteId,
        /// The site gaining the replica. Must be a view member.
        to: SiteId,
    },
}

/// A churn operation scheduled at a virtual time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChurnEvent {
    /// When the view change is proposed.
    pub at: SimTime,
    /// What changes.
    pub op: ChurnOp,
}

/// A validated, time-ordered reconfiguration schedule.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ChurnPlan {
    /// Events sorted by proposal time (ties keep spec order).
    pub events: Vec<ChurnEvent>,
}

fn parse_time(s: &str) -> Result<SimTime> {
    let bad = || Error::InvalidConfig(format!("bad churn time {s:?} (use e.g. 2000ms, 4s, 5ns)"));
    let (digits, mult) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000u64)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(bad());
    };
    let v: u64 = digits.parse().map_err(|_| bad())?;
    v.checked_mul(mult).map(SimTime::from_nanos).ok_or_else(bad)
}

impl ChurnPlan {
    /// A plan from explicit events; sorts them by time (stable, so ties
    /// keep their given order).
    pub fn scripted(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        ChurnPlan { events }
    }

    /// Parse the compact `--churn` spec: `;`-separated events, each
    /// `join:SITE@TIME`, `leave:SITE@TIME`, `crash-leave:SITE@TIME` or
    /// `migrate:VAR:FROM->TO@TIME` with `TIME` in `ns`/`ms`/`s`.
    ///
    /// ```text
    /// join:5@2000ms;migrate:12:4->5@4s;leave:1@6s
    /// ```
    pub fn parse(spec: &str) -> Result<Self> {
        let mut events = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let bad = |what: &str| Error::InvalidConfig(format!("churn event {part:?}: {what}"));
            let (body, at) = part
                .rsplit_once('@')
                .ok_or_else(|| bad("missing @TIME suffix"))?;
            let at = parse_time(at)?;
            let (kind, rest) = body
                .split_once(':')
                .ok_or_else(|| bad("expected KIND:ARGS"))?;
            let site = |s: &str| -> Result<SiteId> {
                s.parse::<u16>().map(SiteId).map_err(|_| bad("bad site id"))
            };
            let op = match kind {
                "join" => ChurnOp::Join(site(rest)?),
                "leave" => ChurnOp::Leave(site(rest)?),
                "crash-leave" => ChurnOp::CrashLeave(site(rest)?),
                "migrate" => {
                    let (var, pair) = rest
                        .split_once(':')
                        .ok_or_else(|| bad("expected migrate:VAR:FROM->TO"))?;
                    let var: usize = var.parse().map_err(|_| bad("bad variable id"))?;
                    let (from, to) = pair
                        .split_once("->")
                        .ok_or_else(|| bad("expected FROM->TO"))?;
                    ChurnOp::Migrate {
                        var: VarId::from(var),
                        from: site(from)?,
                        to: site(to)?,
                    }
                }
                _ => return Err(bad("unknown kind (join/leave/crash-leave/migrate)")),
            };
            events.push(ChurnEvent { at, op });
        }
        Ok(Self::scripted(events))
    }

    /// Draw a plan from a Poisson process with `rate` events per virtual
    /// second over `[0, horizon)`. Events are valid by construction: the
    /// generator tracks the membership timeline, lets at most one site be
    /// out-of-view initially (it joins first), and only schedules leaves
    /// while more than two members remain. Deterministic in `seed`.
    pub fn poisson(seed: u64, n: usize, q: usize, rate: f64, horizon: SimTime) -> Self {
        // Dedicated stream, decorrelated from workload/latency RNGs.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4_52_0F_EE_D0_0D_F0_0Du64.rotate_left(9));
        let mut events = Vec::new();
        if n < 3 || q == 0 || rate <= 0.0 {
            return ChurnPlan { events };
        }
        // The highest site id starts out and joins as the first event.
        let joiner = n - 1;
        let mut members: Vec<bool> = (0..n).map(|i| i != joiner).collect();
        let mut joined = false;
        let mut left: Vec<bool> = vec![false; n];
        let mut t = SimTime::ZERO;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap_ns = (-u.ln() / rate * 1e9).min(1e15) as u64;
            t += SimDuration::from_nanos(gap_ns.max(1));
            if t >= horizon {
                break;
            }
            let member_ids =
                |members: &Vec<bool>| -> Vec<usize> { (0..n).filter(|&i| members[i]).collect() };
            let alive = member_ids(&members);
            let roll = rng.gen_range(0u32..10);
            let op = if !joined && roll < 3 {
                joined = true;
                members[joiner] = true;
                ChurnOp::Join(SiteId::from(joiner))
            } else if roll < 2 && alive.len() > 2 {
                // Leave someone who can still leave (never the whole view).
                let cands: Vec<usize> = alive.iter().copied().filter(|&i| !left[i]).collect();
                if cands.is_empty() {
                    continue;
                }
                let s = cands[rng.gen_range(0..cands.len())];
                members[s] = false;
                left[s] = true;
                if rng.gen_bool(0.5) {
                    ChurnOp::CrashLeave(SiteId::from(s))
                } else {
                    ChurnOp::Leave(SiteId::from(s))
                }
            } else {
                let var = VarId::from(rng.gen_range(0..q));
                let from = alive[rng.gen_range(0..alive.len())];
                let others: Vec<usize> = alive.iter().copied().filter(|&i| i != from).collect();
                let to = others[rng.gen_range(0..others.len())];
                ChurnOp::Migrate {
                    var,
                    from: SiteId::from(from),
                    to: SiteId::from(to),
                }
            };
            events.push(ChurnEvent { at: t, op });
        }
        ChurnPlan { events }
    }

    /// Which sites are in the initial view: everyone except sites whose
    /// first event is a [`ChurnOp::Join`].
    pub fn initial_members(&self, n: usize) -> Vec<bool> {
        let mut members = vec![true; n];
        let mut decided = vec![false; n];
        for ev in &self.events {
            let s = match ev.op {
                ChurnOp::Join(s) | ChurnOp::Leave(s) | ChurnOp::CrashLeave(s) => s,
                ChurnOp::Migrate { .. } => continue,
            };
            if s.index() >= n {
                continue; // out-of-range ids are validate()'s business
            }
            if matches!(ev.op, ChurnOp::Join(_)) && !decided[s.index()] {
                members[s.index()] = false;
            }
            decided[s.index()] = true;
        }
        members
    }

    /// Validate the plan against an `n`-site, `q`-variable system: ids in
    /// range, events time-sorted, at most one join and one leave per site
    /// with the join preceding the leave, no leave below two members, and
    /// migrations target current members.
    pub fn validate(&self, n: usize, q: usize) -> Result<()> {
        let bad = |what: String| Err(Error::InvalidConfig(format!("churn plan: {what}")));
        for w in self.events.windows(2) {
            if w[1].at < w[0].at {
                return bad("events must be sorted by time".into());
            }
        }
        let mut members = self.initial_members(n);
        let mut joined = vec![false; n];
        let mut left = vec![false; n];
        let in_range = |s: SiteId| s.index() < n;
        for ev in &self.events {
            match ev.op {
                ChurnOp::Join(s) => {
                    if !in_range(s) {
                        return bad(format!("join of out-of-range site {s}"));
                    }
                    if members[s.index()] {
                        return bad(format!("join of {s}, already a member"));
                    }
                    if joined[s.index()] || left[s.index()] {
                        return bad(format!("{s} may join at most once (no re-join)"));
                    }
                    joined[s.index()] = true;
                    members[s.index()] = true;
                }
                ChurnOp::Leave(s) | ChurnOp::CrashLeave(s) => {
                    if !in_range(s) {
                        return bad(format!("leave of out-of-range site {s}"));
                    }
                    if !members[s.index()] {
                        return bad(format!(
                            "leave of {s}, not a member at that time \
                             (a join must precede its leave)"
                        ));
                    }
                    if members.iter().filter(|&&m| m).count() <= 2 {
                        return bad(format!("leave of {s} would drop the view below 2 members"));
                    }
                    left[s.index()] = true;
                    members[s.index()] = false;
                }
                ChurnOp::Migrate { var, from, to } => {
                    if var.index() >= q {
                        return bad(format!("migrate of out-of-range variable {var}"));
                    }
                    if !in_range(from) || !in_range(to) {
                        return bad(format!("migrate {var}: site out of range"));
                    }
                    if from == to {
                        return bad(format!("migrate {var}: from == to ({from})"));
                    }
                    if !members[to.index()] {
                        return bad(format!("migrate {var} to {to}, not a member at that time"));
                    }
                }
            }
        }
        Ok(())
    }

    /// `true` when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_kinds_and_times() {
        let p = ChurnPlan::parse("join:5@2000ms; migrate:12:4->5@4s ;leave:1@6s").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.events[0],
            ChurnEvent {
                at: SimTime::from_millis(2000),
                op: ChurnOp::Join(SiteId(5)),
            }
        );
        assert_eq!(
            p.events[1].op,
            ChurnOp::Migrate {
                var: VarId(12),
                from: SiteId(4),
                to: SiteId(5),
            }
        );
        assert_eq!(p.events[2].at, SimTime::from_millis(6000));
        assert!(matches!(p.events[2].op, ChurnOp::Leave(SiteId(1))));
        let crash = ChurnPlan::parse("crash-leave:2@1500000000ns").unwrap();
        assert_eq!(crash.events[0].at, SimTime::from_millis(1500));
        assert!(matches!(crash.events[0].op, ChurnOp::CrashLeave(SiteId(2))));
    }

    #[test]
    fn parse_sorts_out_of_order_specs() {
        let p = ChurnPlan::parse("leave:1@6s;join:5@2s").unwrap();
        assert!(matches!(p.events[0].op, ChurnOp::Join(_)));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for spec in [
            "join:5",                        // missing time
            "join:5@2000",                   // missing unit
            "join:x@2s",                     // bad site
            "migrate:12:4@2s",               // missing ->TO
            "migrate:a:4->5@2s",             // bad var
            "frobnicate:1@2s",               // unknown kind
            "join@2s",                       // missing args
            "leave:1@99999999999999999999s", // overflow
        ] {
            assert!(ChurnPlan::parse(spec).is_err(), "accepted {spec:?}");
        }
    }

    #[test]
    fn initial_members_excludes_first_time_joiners() {
        let p = ChurnPlan::parse("join:5@2s;leave:1@6s").unwrap();
        let m = p.initial_members(6);
        assert_eq!(m, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn validate_accepts_a_sane_plan() {
        let p = ChurnPlan::parse("join:5@2s;migrate:3:0->5@4s;crash-leave:1@6s").unwrap();
        assert!(p.validate(6, 10).is_ok());
    }

    #[test]
    fn validate_rejects_join_after_leave_and_rejoin() {
        // Leave precedes the join for site 2: site 2 starts out-of-view
        // (its first event is the join? no — the leave is first), so the
        // leave hits a non-member.
        let p = ChurnPlan::parse("leave:2@1s;join:2@3s").unwrap();
        assert!(p.validate(6, 10).is_err());
        // Join → leave → join again is a re-join.
        let p = ChurnPlan::scripted(vec![
            ChurnEvent {
                at: SimTime::from_millis(1000),
                op: ChurnOp::Join(SiteId(5)),
            },
            ChurnEvent {
                at: SimTime::from_millis(2000),
                op: ChurnOp::Leave(SiteId(5)),
            },
            ChurnEvent {
                at: SimTime::from_millis(3000),
                op: ChurnOp::Join(SiteId(5)),
            },
        ]);
        assert!(p.validate(6, 10).is_err());
    }

    #[test]
    fn validate_rejects_migrate_to_non_member() {
        // Site 5 is a first-time joiner at 4s; migrating to it at 2s
        // targets a non-member.
        let p = ChurnPlan::parse("migrate:3:0->5@2s;join:5@4s").unwrap();
        assert!(p.validate(6, 10).is_err());
        // After the join it is fine.
        let p = ChurnPlan::parse("join:5@2s;migrate:3:0->5@4s").unwrap();
        assert!(p.validate(6, 10).is_ok());
        // Migrating to a departed site is rejected too.
        let p = ChurnPlan::parse("leave:1@2s;migrate:3:0->1@4s").unwrap();
        assert!(p.validate(6, 10).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_and_self_migration() {
        assert!(ChurnPlan::parse("join:9@2s")
            .unwrap()
            .validate(6, 10)
            .is_err());
        assert!(ChurnPlan::parse("migrate:42:0->1@2s")
            .unwrap()
            .validate(6, 10)
            .is_err());
        assert!(ChurnPlan::parse("migrate:3:1->1@2s")
            .unwrap()
            .validate(6, 10)
            .is_err());
    }

    #[test]
    fn validate_keeps_two_members_alive() {
        let p = ChurnPlan::parse("leave:0@1s;leave:1@2s").unwrap();
        assert!(p.validate(3, 10).is_err());
        assert!(p.validate(4, 10).is_ok());
    }

    #[test]
    fn poisson_plans_are_deterministic_and_valid() {
        let horizon = SimTime::from_millis(60_000);
        let a = ChurnPlan::poisson(7, 8, 20, 0.5, horizon);
        let b = ChurnPlan::poisson(7, 8, 20, 0.5, horizon);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "0.5 ev/s over 60 s should draw events");
        a.validate(8, 20)
            .expect("poisson plans are valid by construction");
        let c = ChurnPlan::poisson(8, 8, 20, 0.5, horizon);
        assert_ne!(a, c, "different seed, different plan");
        for ev in &a.events {
            assert!(ev.at < horizon);
        }
    }

    #[test]
    fn poisson_degenerate_inputs_yield_empty_plans() {
        let h = SimTime::from_millis(1000);
        assert!(ChurnPlan::poisson(1, 2, 10, 1.0, h).is_empty());
        assert!(ChurnPlan::poisson(1, 8, 0, 1.0, h).is_empty());
        assert!(ChurnPlan::poisson(1, 8, 10, 0.0, h).is_empty());
    }
}
