//! Checker-of-the-checker: the fast vector-clock verifier and the explicit
//! transitive-closure verifier must agree on real simulated histories.

use causal_repro::checker::{check, delivery_inversions_bruteforce};
use causal_repro::prelude::*;

#[test]
fn fast_and_bruteforce_checkers_agree_on_clean_histories() {
    for (kind, partial) in [
        (ProtocolKind::FullTrack, true),
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::OptTrackCrp, false),
        (ProtocolKind::OptP, false),
    ] {
        for seed in 0..4 {
            let mut cfg = if partial {
                SimConfig::paper_partial(kind, 6, 0.5, seed)
            } else {
                SimConfig::paper_full(kind, 6, 0.5, seed)
            };
            cfg.workload.events_per_process = 50;
            cfg.record_history = true;
            let r = causal_repro::simnet::run(&cfg);
            let h = r.history.as_ref().unwrap();
            let v = check(h);
            let brute = delivery_inversions_bruteforce(h);
            assert_eq!(
                v.delivery + v.own_write_races,
                brute,
                "{kind} seed {seed}: fast and brute-force checkers disagree"
            );
            assert_eq!(brute, 0, "{kind} seed {seed}: protocols are clean");
        }
    }
}

#[test]
fn both_checkers_flag_a_corrupted_history() {
    // Take a real execution and corrupt one site's apply order; both
    // verifiers must notice (same positive count).
    let mut cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 5, 0.6, 3);
    cfg.workload.events_per_process = 40;
    cfg.record_history = true;
    let r = causal_repro::simnet::run(&cfg);
    let clean = r.history.unwrap();

    // Rebuild the history with site 0's applies reversed.
    let mut corrupted = causal_repro::checker::History::new(5);
    for (i, ops) in clean.ops().iter().enumerate() {
        for op in ops {
            match op {
                causal_repro::checker::OpRecord::Write { write, var } => {
                    corrupted.record_write(SiteId::from(i), *write, *var)
                }
                causal_repro::checker::OpRecord::Read {
                    var,
                    read_from,
                    served_by,
                } => corrupted.record_read(SiteId::from(i), *var, *read_from, *served_by),
            }
        }
    }
    for (i, applies) in clean.applies().iter().enumerate() {
        if i == 0 {
            for w in applies.iter().rev() {
                corrupted.record_apply(SiteId(0), *w);
            }
        } else {
            for w in applies {
                corrupted.record_apply(SiteId::from(i), *w);
            }
        }
    }

    let brute = delivery_inversions_bruteforce(&corrupted);
    assert!(brute > 0, "reversing applies must create inversions");
    let v = check(&corrupted);
    // The fast checker counts FIFO violations separately and its delivery
    // counter uses a different (per-origin last-position) accounting, so
    // exact counts differ — but both must scream.
    assert!(
        v.fifo + v.delivery + v.own_write_races > 0,
        "fast checker missed the corruption"
    );
}
