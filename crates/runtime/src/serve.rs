//! Real-cluster serve mode: a benchmarked deployment of one protocol.
//!
//! `serve` is what the paper's testbed would have looked like with a
//! benchmark harness attached: every site is a live node (thread +
//! protocol instance), the transport is either the in-process channel
//! fabric or a real loopback-TCP mesh, and the offered load comes from
//! closed-loop clients ([`crate::loadgen`]) instead of a pre-generated
//! schedule. The run reports what serving systems are judged by —
//! throughput and latency tails — next to the protocol-level message and
//! meta-data accounting the paper measures.
//!
//! Since client operations are generated at issue time from real completion
//! instants, a serve run is *not* schedule-replayable on the simulator;
//! sim-vs-real cross-validation uses replay mode ([`crate::run_tcp`] /
//! [`crate::run_threaded`] with the simulator's workload) instead.

use crate::loadgen::{ClosedLoop, LoadProfile};
use crate::node::{BatchWindow, ChannelTransport, Lanes, Node, OpDriver, Transport, Wire};
use crate::runner::{drive, Cluster};
use crate::tcp::build_mesh;
use causal_checker::History;
use causal_memory::Placement;
use causal_metrics::{LatencySummary, OpLatency, RunMetrics};
use causal_proto::{build_site, ProtocolConfig, ProtocolKind, Replication};
use causal_types::{Result, SiteId, SizeModel};
use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which fabric carries the mesh traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTransport {
    /// In-process crossbeam channels (single-box A/B baseline).
    Channel,
    /// Loopback TCP with `TCP_NODELAY` — the paper's actual transport.
    Tcp,
}

impl ServeTransport {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ServeTransport::Channel => "channel",
            ServeTransport::Tcp => "tcp",
        }
    }
}

/// Configuration of a serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The protocol every site runs.
    pub protocol: ProtocolKind,
    /// Number of sites. Partial-capable protocols get the paper's
    /// 3-replica partial placement, the rest full replication.
    pub n: usize,
    /// The closed-loop client fleet.
    pub load: LoadProfile,
    /// The transport fabric.
    pub transport: ServeTransport,
    /// Per-destination update batching on the send path (`None` = off).
    pub batch: Option<BatchWindow>,
    /// Modeled payload length attached to written values (bytes).
    pub payload_len: u32,
    /// Byte accounting for the metrics.
    pub size_model: SizeModel,
}

impl ServeConfig {
    /// A small smoke-sized run: `n` sites, 2 clients each issuing 40 ops
    /// with 1 ms mean think time, 30 % writes over 100 variables.
    pub fn quick(protocol: ProtocolKind, n: usize, transport: ServeTransport, seed: u64) -> Self {
        ServeConfig {
            protocol,
            n,
            load: LoadProfile {
                clients_per_site: 2,
                ops_per_client: 40,
                think: Duration::from_millis(1),
                w_rate: 0.3,
                q: 100,
                seed,
            },
            transport,
            batch: None,
            payload_len: 0,
            size_model: SizeModel::java_like(),
        }
    }
}

/// What a serving run produced.
pub struct ServeReport {
    /// Client operations completed.
    pub ops: u64,
    /// Wall-clock duration of the run (spawn to quiescence).
    pub elapsed: Duration,
    /// Completion-latency summary (mean / p50 / p99 / max).
    pub latency: LatencySummary,
    /// Protocol-level message and meta-byte accounting (all client ops are
    /// measured; there is no warm-up window under closed-loop load).
    pub metrics: RunMetrics,
    /// The combined execution history (feed to `causal_checker::check`).
    pub history: History,
    /// Parked updates at shutdown, summed over sites (must be 0).
    pub final_pending: usize,
}

impl ServeReport {
    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Deploy the cluster, run the client fleet to completion, and collect the
/// report. Blocks until quiescent.
pub fn serve(cfg: &ServeConfig) -> Result<ServeReport> {
    let n = cfg.n;
    let placement = if cfg.protocol.supports_partial() {
        Arc::new(Placement::paper_partial(n)?)
    } else {
        Arc::new(Placement::full(n)?)
    };
    let repl: Arc<dyn Replication> = placement;
    let latency = Arc::new(Mutex::new(OpLatency::new()));
    let start = Instant::now();

    let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Wire>()).unzip();
    let in_flight = Arc::new(AtomicI64::new(0));
    let finished = Arc::new(AtomicUsize::new(0));

    // One transport per fabric; TCP additionally owns reader threads that
    // must be joined after the nodes exit.
    let channel_errors = Arc::new(AtomicU64::new(0));
    let mut mesh = match cfg.transport {
        ServeTransport::Tcp => Some(build_mesh(n, &txs)?),
        ServeTransport::Channel => None,
    };
    let shared: Option<Arc<dyn Transport>> = match cfg.transport {
        ServeTransport::Channel => Some(Arc::new(ChannelTransport {
            peers: txs.clone(),
            conn_errors: channel_errors.clone(),
        })),
        ServeTransport::Tcp => None,
    };

    let mut handles = Vec::with_capacity(n);
    for (i, inbox) in rxs.into_iter().enumerate() {
        let site = SiteId::from(i);
        let transport = match (&shared, &mut mesh) {
            (Some(t), _) => t.clone(),
            (None, Some(m)) => m.transport_for(i),
            (None, None) => unreachable!("one fabric is always built"),
        };
        let finished = finished.clone();
        let mut node = Node {
            site,
            proto: build_site(cfg.protocol, site, repl.clone(), ProtocolConfig::default()),
            driver: OpDriver::Closed(ClosedLoop::new(&cfg.load, site, latency.clone())),
            n,
            payload_len: cfg.payload_len,
            transport,
            inbox,
            in_flight: in_flight.clone(),
            size_model: cfg.size_model,
            batch: cfg.batch.map(Lanes::new),
            on_schedule_done: None,
            receipt: Default::default(),
        };
        node.on_schedule_done = Some(Box::new(move || {
            finished.fetch_add(1, Ordering::SeqCst);
        }));
        handles.push(std::thread::spawn(move || node.run()));
    }

    let (history, mut metrics, final_pending) = drive(
        Cluster {
            txs,
            in_flight,
            finished,
            handles,
        },
        &[],
    );
    let elapsed = start.elapsed();
    if let Some(m) = mesh {
        let errs = m.conn_error_counter();
        m.teardown();
        metrics.transport_conn_errors += errs.load(Ordering::Relaxed);
    }
    metrics.transport_conn_errors += channel_errors.load(Ordering::Relaxed);

    let latency = latency.lock().expect("latency recorder poisoned");
    Ok(ServeReport {
        ops: latency.count(),
        elapsed,
        latency: latency.summary(),
        metrics,
        history,
        final_pending,
    })
}
