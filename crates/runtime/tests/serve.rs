//! Serving-path correctness: every protocol, both transport fabrics,
//! closed-loop load — checker-clean histories, complete latency
//! accounting, clean shutdown, and exact channel-vs-TCP agreement where
//! determinism allows it.

use causal_checker::check;
use causal_proto::ProtocolKind;
use causal_runtime::{
    run_tcp, run_threaded, serve, BatchWindow, RuntimeConfig, ServeConfig, ServeTransport,
};
use causal_types::MsgKind;
use std::time::Duration;

const ALL_PROTOCOLS: [ProtocolKind; 5] = [
    ProtocolKind::FullTrack,
    ProtocolKind::OptTrack,
    ProtocolKind::HbTrack,
    ProtocolKind::OptTrackCrp,
    ProtocolKind::OptP,
];

#[test]
fn serve_runs_every_protocol_on_the_channel_fabric() {
    for kind in ALL_PROTOCOLS {
        let cfg = ServeConfig::quick(kind, 5, ServeTransport::Channel, 11);
        let report = serve(&cfg).expect("serve runs");
        let expected = cfg.load.total_ops(5) as u64;
        assert_eq!(report.ops, expected, "{kind}: every client op completes");
        assert_eq!(report.latency.ops, expected, "{kind}: every op timed");
        assert_eq!(report.final_pending, 0, "{kind}: no parked updates");
        assert!(report.ops_per_sec() > 0.0, "{kind}");
        let v = check(&report.history);
        assert!(v.protocol_clean(), "{kind}: {:?}", v.examples);
    }
}

#[test]
fn serve_runs_every_protocol_on_the_tcp_fabric() {
    for kind in ALL_PROTOCOLS {
        let mut cfg = ServeConfig::quick(kind, 4, ServeTransport::Tcp, 23);
        cfg.load.ops_per_client = 25;
        let report = serve(&cfg).expect("serve runs");
        let expected = cfg.load.total_ops(4) as u64;
        assert_eq!(report.ops, expected, "{kind}: every client op completes");
        assert_eq!(report.final_pending, 0, "{kind}: no parked updates");
        assert_eq!(
            report.metrics.transport_conn_errors, 0,
            "{kind}: a healthy run survives without connection errors"
        );
        let v = check(&report.history);
        assert!(v.protocol_clean(), "{kind}: {:?}", v.examples);
    }
}

#[test]
fn serve_with_batching_drains_every_lane() {
    let mut cfg = ServeConfig::quick(ProtocolKind::OptTrack, 5, ServeTransport::Tcp, 31);
    cfg.batch = Some(BatchWindow::windowed(Duration::from_millis(2)));
    cfg.load.w_rate = 0.8; // update-heavy so lanes actually fill
    let report = serve(&cfg).expect("serve runs");
    assert_eq!(report.ops, cfg.load.total_ops(5) as u64);
    assert_eq!(report.final_pending, 0, "no update may stay parked");
    let v = check(&report.history);
    assert!(v.protocol_clean(), "{:?}", v.examples);
    // Update batching must shrink frames, never lose or duplicate them:
    // every batched SM is one of the ordinary SM sends it replaced.
    let m = &report.metrics;
    if m.batch_flushes > 0 {
        assert!(m.batched_sms >= 2 * m.batch_flushes, "a batch has >= 2 SMs");
    }
}

#[test]
fn zero_think_shutdown_race_does_not_panic() {
    // Zero think time drives the fleet as hard as it can and maximizes the
    // chance a late frame races the Stop broadcast; the run must still
    // tear down cleanly with a complete history.
    for transport in [ServeTransport::Channel, ServeTransport::Tcp] {
        let mut cfg = ServeConfig::quick(ProtocolKind::FullTrack, 5, transport, 47);
        cfg.load.think = Duration::ZERO;
        cfg.load.ops_per_client = 60;
        cfg.load.w_rate = 0.6;
        let report = serve(&cfg).expect("serve runs");
        assert_eq!(report.ops, cfg.load.total_ops(5) as u64, "{transport:?}");
        assert_eq!(report.final_pending, 0, "{transport:?}");
        let v = check(&report.history);
        assert!(v.protocol_clean(), "{transport:?}: {:?}", v.examples);
    }
}

#[test]
fn optp_replay_counters_agree_byte_for_byte_across_transports_and_pool_sizes() {
    // optP is fully replicated (no FM/RM round trips) with a fixed-width
    // vector piggyback, so replaying one schedule must produce *identical*
    // message counts and meta bytes on both fabrics and at every scheduler
    // pool size — not just within a tolerance. W = 5 (= n) emulates the old
    // thread-per-site fabric, so this also pins new-fabric == old-fabric.
    let mut cfg = RuntimeConfig::fast(ProtocolKind::OptP, 5, 0.4, 13, 40);
    cfg.workers = 1;
    let baseline = run_threaded(&cfg);
    for workers in [1usize, 2, 4, 5] {
        cfg.workers = workers;
        let chan = run_threaded(&cfg);
        let tcp = run_tcp(&cfg).expect("tcp run");
        for (label, out) in [("channel", &chan), ("tcp", &tcp)] {
            let tag = format!("W={workers}/{label}");
            for kind in [MsgKind::Sm, MsgKind::Fm, MsgKind::Rm] {
                assert_eq!(
                    baseline.metrics.all.count(kind),
                    out.metrics.all.count(kind),
                    "{tag}: {kind:?} count"
                );
                assert_eq!(
                    baseline.metrics.all.bytes(kind),
                    out.metrics.all.bytes(kind),
                    "{tag}: {kind:?} meta bytes"
                );
                assert_eq!(
                    baseline.metrics.measured.count(kind),
                    out.metrics.measured.count(kind),
                    "{tag}: {kind:?} measured count"
                );
                assert_eq!(
                    baseline.metrics.measured.bytes(kind),
                    out.metrics.measured.bytes(kind),
                    "{tag}: {kind:?} measured meta bytes"
                );
            }
            assert_eq!(baseline.metrics.writes, out.metrics.writes, "{tag}");
            assert_eq!(baseline.metrics.reads, out.metrics.reads, "{tag}");
            assert_eq!(
                baseline.metrics.remote_reads, out.metrics.remote_reads,
                "{tag}"
            );
        }
    }
}

#[test]
fn duration_bounded_serve_retires_clients_at_the_deadline() {
    // Time-bounded mode: clients stop issuing once their next op would
    // fall past the deadline, well before the per-client safety cap.
    let mut cfg = ServeConfig::quick(ProtocolKind::OptP, 4, ServeTransport::Channel, 71);
    cfg.load.ops_per_client = 1 << 20; // safety cap, not the bound
    cfg.load.duration = Some(Duration::from_millis(50));
    cfg.load.think = Duration::from_millis(1);
    let report = serve(&cfg).expect("serve runs");
    assert!(report.ops > 0, "the deadline leaves room for some ops");
    assert!(
        report.ops < cfg.load.total_ops(4) as u64,
        "the deadline, not the op budget, ended the run"
    );
    assert_eq!(report.latency.ops, report.ops, "every op timed");
    assert_eq!(report.final_pending, 0);
    let v = check(&report.history);
    assert!(v.protocol_clean(), "{:?}", v.examples);
}

#[test]
fn replay_warmup_window_is_attributed_like_the_simulator() {
    // 40 events at the paper's 15% warm-up -> 6 warm-up ops per site; the
    // measured op tally must cover exactly the post-warm-up window while
    // `all` covers everything.
    let cfg = RuntimeConfig::fast(ProtocolKind::OptTrack, 6, 0.3, 4, 40);
    let out = run_threaded(&cfg);
    let measured_ops = out.metrics.writes + out.metrics.reads;
    assert_eq!(measured_ops, 6 * (40 - 6), "measured ops span the window");
    assert!(
        out.metrics.all.count(MsgKind::Sm) >= out.metrics.measured.count(MsgKind::Sm),
        "warm-up traffic counts toward `all` only"
    );
    assert!(
        out.metrics.measured.count(MsgKind::Sm) > 0,
        "the measured window is not empty"
    );
}
