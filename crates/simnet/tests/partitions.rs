//! Fault injection: temporary network partitions.
//!
//! The paper motivates causal consistency through the CAP theorem: it is
//! one of the strongest models that stays fully available under partition.
//! These tests sever the network mid-run and verify that (a) both sides
//! keep executing their schedules without blocking, (b) crossing updates
//! park and drain after the heal, and (c) the final execution is still
//! causally consistent.

use causal_checker::check;
use causal_clocks::DestSet;
use causal_proto::ProtocolKind;
use causal_simnet::{run, PartitionWindow, SimConfig};
use causal_types::{SimTime, SiteId};

fn half(n: usize) -> DestSet {
    DestSet::from_sites((0..n / 2).map(SiteId::from))
}

/// One long partition covering the middle of the run.
fn mid_run_partition(n: usize) -> PartitionWindow {
    PartitionWindow {
        start: SimTime::from_millis(10_000),
        end: SimTime::from_millis(40_000),
        side_a: half(n),
    }
}

#[test]
fn all_protocols_survive_a_partition() {
    for (kind, partial) in [
        (ProtocolKind::FullTrack, true),
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::HbTrack, true),
        (ProtocolKind::OptTrackCrp, false),
        (ProtocolKind::OptP, false),
    ] {
        let mut cfg = if partial {
            SimConfig::paper_partial(kind, 8, 0.5, 31)
        } else {
            SimConfig::paper_full(kind, 8, 0.5, 31)
        };
        cfg.workload.events_per_process = 60;
        cfg.record_history = true;
        cfg.partitions = vec![mid_run_partition(8)];
        let r = run(&cfg);
        assert_eq!(r.final_pending, 0, "{kind}: partition must heal fully");
        let v = check(r.history.as_ref().unwrap());
        assert!(v.protocol_clean(), "{kind}: {:?}", v.examples);
    }
}

#[test]
fn partition_delays_cross_cut_updates() {
    // Same run with and without the partition: identical message counts
    // (availability — nobody stops writing), but the partitioned run parks
    // updates while the cut is active.
    let mut base = SimConfig::paper_full(ProtocolKind::OptP, 6, 0.8, 32);
    base.workload.events_per_process = 60;
    let clean = run(&base);

    let mut cut = base.clone();
    cut.partitions = vec![mid_run_partition(6)];
    let parted = run(&cut);

    assert_eq!(
        clean.metrics.all.total_count(),
        parted.metrics.all.total_count(),
        "both sides stay available: same traffic"
    );
    assert!(
        parted.metrics.max_pending > clean.metrics.max_pending,
        "cross-cut updates must park during the partition ({} vs {})",
        parted.metrics.max_pending,
        clean.metrics.max_pending
    );
    assert!(
        parted.metrics.apply_latency_ns.mean() > clean.metrics.apply_latency_ns.mean(),
        "healing delays visibility"
    );
}

#[test]
fn reads_inside_a_side_keep_working() {
    // During the partition, a side still serves causally consistent local
    // data: the run completes with a strictly-clean full-replication
    // history even though half the updates arrive late.
    let mut cfg = SimConfig::paper_full(ProtocolKind::OptTrackCrp, 6, 0.5, 33);
    cfg.workload.events_per_process = 60;
    cfg.record_history = true;
    cfg.partitions = vec![mid_run_partition(6)];
    let r = run(&cfg);
    let v = check(r.history.as_ref().unwrap());
    assert!(v.strictly_clean(), "{:?}", v.examples);
}

#[test]
fn repeated_flapping_partitions() {
    // Partition flaps on and off five times; FIFO and causality must hold
    // throughout.
    let flaps: Vec<PartitionWindow> = (0..5)
        .map(|i| PartitionWindow {
            start: SimTime::from_millis(5_000 + i * 12_000),
            end: SimTime::from_millis(11_000 + i * 12_000),
            side_a: half(8),
        })
        .collect();
    let mut cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 8, 0.5, 34);
    cfg.workload.events_per_process = 60;
    cfg.record_history = true;
    cfg.partitions = flaps;
    let r = run(&cfg);
    assert_eq!(r.final_pending, 0);
    let v = check(r.history.as_ref().unwrap());
    assert!(v.protocol_clean(), "{:?}", v.examples);
}

#[test]
fn total_partition_of_one_site() {
    // Isolate a single site for a long stretch: it keeps writing (sends
    // buffered) and the rest of the system keeps going.
    let mut cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 8, 0.5, 35);
    cfg.workload.events_per_process = 60;
    cfg.record_history = true;
    cfg.partitions = vec![PartitionWindow {
        start: SimTime::from_millis(5_000),
        end: SimTime::from_millis(60_000),
        side_a: DestSet::from_sites([SiteId(3)]),
    }];
    let r = run(&cfg);
    assert_eq!(r.final_pending, 0);
    let v = check(r.history.as_ref().unwrap());
    assert!(v.protocol_clean(), "{:?}", v.examples);
}

mod pauses {
    use super::*;
    use causal_simnet::PauseWindow;

    #[test]
    fn paused_site_recovers_and_catches_up() {
        for kind in [ProtocolKind::OptTrack, ProtocolKind::OptTrackCrp] {
            let partial = kind.supports_partial();
            let mut cfg = if partial {
                SimConfig::paper_partial(kind, 6, 0.5, 41)
            } else {
                SimConfig::paper_full(kind, 6, 0.5, 41)
            };
            cfg.workload.events_per_process = 60;
            cfg.record_history = true;
            cfg.pauses = vec![PauseWindow {
                site: SiteId(2),
                start: SimTime::from_millis(8_000),
                end: SimTime::from_millis(45_000),
            }];
            let r = run(&cfg);
            assert_eq!(r.final_pending, 0, "{kind}: everything drains at resume");
            let v = check(r.history.as_ref().unwrap());
            assert!(v.protocol_clean(), "{kind}: {:?}", v.examples);
            // The paused site still executes its full schedule (ops defer,
            // they are not dropped).
            assert_eq!(r.history.as_ref().unwrap().ops()[2].len(), 60);
        }
    }

    #[test]
    fn pause_defers_the_sites_own_operations() {
        let mut base = SimConfig::paper_full(ProtocolKind::OptP, 4, 0.5, 42);
        base.workload.events_per_process = 40;
        let normal = run(&base);
        let mut paused = base.clone();
        paused.pauses = vec![PauseWindow {
            site: SiteId(0),
            start: SimTime::ZERO,
            end: SimTime::from_millis(120_000),
        }];
        let r = run(&paused);
        // Identical traffic in the end — the pause shifts time, not work.
        assert_eq!(
            r.metrics.all.total_count(),
            normal.metrics.all.total_count()
        );
        assert!(
            r.duration > normal.duration,
            "the run stretches past the pause"
        );
    }

    #[test]
    fn overlapping_pauses_and_partitions_compose() {
        let mut cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 8, 0.5, 43);
        cfg.workload.events_per_process = 50;
        cfg.record_history = true;
        cfg.partitions = vec![mid_run_partition(8)];
        cfg.pauses = vec![PauseWindow {
            site: SiteId(5),
            start: SimTime::from_millis(20_000),
            end: SimTime::from_millis(50_000),
        }];
        let r = run(&cfg);
        assert_eq!(r.final_pending, 0);
        let v = check(r.history.as_ref().unwrap());
        assert!(v.protocol_clean(), "{:?}", v.examples);
    }
}
