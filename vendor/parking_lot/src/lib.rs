//! Offline stand-in for `parking_lot`: the `Mutex` API this workspace
//! uses, backed by `std::sync::Mutex`. Poisoning is swallowed (parking_lot
//! mutexes do not poison), which matches the upstream semantics callers
//! rely on: `lock()` returns a guard, not a `Result`.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. A panic while a
    /// previous holder held the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
