//! Replica placement strategies.

use causal_clocks::DestSet;
use causal_proto::Replication;
use causal_types::{Error, Result, SiteId, VarId};
use serde::{Deserialize, Serialize};

/// Which placement strategy to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PlacementKind {
    /// The paper's placement: variable `h` is replicated at the `p`
    /// consecutive sites starting at `h mod n`, spreading replicas evenly
    /// (`|X_i| ≈ p·q/n` per site).
    Even,
    /// Pseudo-random placement: the starting site is a hash of the variable
    /// id (seeded), replicas are the following `p` consecutive sites.
    Hashed {
        /// Hash seed, so different runs can draw different placements.
        seed: u64,
    },
    /// Clustered placement: sites are divided into contiguous regions of
    /// size `p`; a variable lives entirely inside one region. Models
    /// region-local storage and maximizes placement skew.
    Clustered,
    /// Full replication (`p = n`) — required by Opt-Track-CRP and optP.
    Full,
}

/// A concrete placement of `q` variables over `n` sites with replication
/// factor `p`.
///
/// Placement is static for the lifetime of a run (the paper does not model
/// reconfiguration). `fetch_target` implements the paper's "predesignated
/// site" for remote reads: each (site, variable) pair always fetches from
/// the same replica — the one closest to the reader in ring distance, with
/// ties broken towards lower site ids.
#[derive(Clone, Debug)]
pub struct Placement {
    kind: PlacementKind,
    n: usize,
    p: usize,
}

impl Placement {
    /// Create a placement. `p` must satisfy `1 ≤ p ≤ n` (for
    /// [`PlacementKind::Full`], `p` is forced to `n`).
    pub fn new(kind: PlacementKind, n: usize, p: usize) -> Result<Self> {
        if n == 0 || n > causal_clocks::dests::MAX_SITES {
            return Err(Error::InvalidConfig(format!(
                "n must be in 1..={}, got {n}",
                causal_clocks::dests::MAX_SITES
            )));
        }
        let p = if kind == PlacementKind::Full { n } else { p };
        if p == 0 || p > n {
            return Err(Error::InvalidConfig(format!(
                "replication factor p must be in 1..=n ({n}), got {p}"
            )));
        }
        Ok(Placement { kind, n, p })
    }

    /// The paper's partial-replication setting: `p = max(1, round(0.3·n))`.
    pub fn paper_partial(n: usize) -> Result<Self> {
        let p = ((0.3 * n as f64).round() as usize).max(1);
        Placement::new(PlacementKind::Even, n, p)
    }

    /// Full replication over `n` sites.
    pub fn full(n: usize) -> Result<Self> {
        Placement::new(PlacementKind::Full, n, n)
    }

    /// Replication factor.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Placement strategy.
    pub fn kind(&self) -> PlacementKind {
        self.kind
    }

    fn start_site(&self, var: VarId) -> usize {
        match self.kind {
            PlacementKind::Even | PlacementKind::Full => var.index() % self.n,
            PlacementKind::Hashed { seed } => {
                // SplitMix64 over (var, seed): cheap, deterministic, well
                // spread.
                let mut z = (var.index() as u64)
                    .wrapping_add(seed)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as usize % self.n
            }
            PlacementKind::Clustered => {
                let regions = self.n / self.p.max(1);
                if regions == 0 {
                    0
                } else {
                    (var.index() % regions) * self.p
                }
            }
        }
    }

    /// Ring distance from `from` to `to` over `n` sites (used to pick the
    /// predesignated fetch replica; also by [`crate::DynamicPlacement`] to
    /// keep view-aware failover orders consistent with the static ones).
    pub(crate) fn ring_distance(&self, from: usize, to: usize) -> usize {
        let d = (to + self.n - from) % self.n;
        d.min(self.n - d)
    }

    /// All replicas of `var` ordered by fetch preference for `site`:
    /// ascending ring distance, ties towards lower site ids. The first
    /// entry is exactly [`Replication::fetch_target`]; the rest are the
    /// failover order a degraded read walks when the predesignated replica
    /// does not answer within its deadline.
    pub fn fetch_candidates(&self, var: VarId, site: SiteId) -> Vec<SiteId> {
        let mut candidates: Vec<SiteId> = self.replicas(var).iter().collect();
        candidates.sort_by_key(|r| (self.ring_distance(site.index(), r.index()), *r));
        candidates
    }
}

impl Replication for Placement {
    fn n(&self) -> usize {
        self.n
    }

    fn replicas(&self, var: VarId) -> DestSet {
        if self.p == self.n {
            return DestSet::full(self.n);
        }
        let start = self.start_site(var);
        DestSet::from_sites((0..self.p).map(|j| SiteId::from((start + j) % self.n)))
    }

    fn fetch_target(&self, var: VarId, site: SiteId) -> SiteId {
        let mut best: Option<(usize, SiteId)> = None;
        for r in self.replicas(var).iter() {
            let d = self.ring_distance(site.index(), r.index());
            match best {
                Some((bd, bs)) if (d, r) >= (bd, bs) => {}
                _ => best = Some((d, r)),
            }
        }
        best.expect("placement guarantees at least one replica").1
    }

    fn is_full(&self) -> bool {
        self.p == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_placement_spreads_load() {
        // Paper setting: n = 10, p = 3, q = 100 → |X_i| = p·q/n = 30 each.
        let pl = Placement::paper_partial(10).unwrap();
        assert_eq!(pl.p(), 3);
        let mut load = vec![0usize; 10];
        for v in VarId::all(100) {
            for s in pl.replicas(v).iter() {
                load[s.index()] += 1;
            }
        }
        assert!(load.iter().all(|&l| l == 30), "even load, got {load:?}");
    }

    #[test]
    fn paper_partial_rounds_point_three_n() {
        for (n, expect) in [(5, 2), (10, 3), (20, 6), (30, 9), (40, 12)] {
            assert_eq!(Placement::paper_partial(n).unwrap().p(), expect);
        }
    }

    #[test]
    fn full_placement_is_full() {
        let pl = Placement::full(7).unwrap();
        assert!(pl.is_full());
        assert_eq!(pl.replicas(VarId(3)).len(), 7);
    }

    #[test]
    fn fetch_target_is_a_replica_and_deterministic() {
        let pl = Placement::paper_partial(10).unwrap();
        for v in VarId::all(50) {
            for s in SiteId::all(10) {
                let t = pl.fetch_target(v, s);
                assert!(pl.replicas(v).contains(t));
                assert_eq!(t, pl.fetch_target(v, s), "predesignated = stable");
            }
        }
    }

    #[test]
    fn fetch_target_prefers_nearby_replica() {
        // n = 10, p = 3, var 0 → replicas {0, 1, 2}. Site 9's nearest is 0.
        let pl = Placement::new(PlacementKind::Even, 10, 3).unwrap();
        assert_eq!(pl.fetch_target(VarId(0), SiteId(9)), SiteId(0));
        assert_eq!(pl.fetch_target(VarId(0), SiteId(4)), SiteId(2));
    }

    #[test]
    fn clustered_placement_keeps_replicas_in_one_region() {
        let pl = Placement::new(PlacementKind::Clustered, 12, 3).unwrap();
        for v in VarId::all(40) {
            let sites: Vec<_> = pl.replicas(v).iter().collect();
            let region = sites[0].index() / 3;
            assert!(sites.iter().all(|s| s.index() / 3 == region));
        }
    }

    #[test]
    fn hashed_placement_differs_by_seed() {
        let a = Placement::new(PlacementKind::Hashed { seed: 1 }, 20, 6).unwrap();
        let b = Placement::new(PlacementKind::Hashed { seed: 2 }, 20, 6).unwrap();
        let differs = VarId::all(50).any(|v| a.replicas(v) != b.replicas(v));
        assert!(differs);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Placement::new(PlacementKind::Even, 0, 1).is_err());
        assert!(Placement::new(PlacementKind::Even, 5, 0).is_err());
        assert!(Placement::new(PlacementKind::Even, 5, 6).is_err());
        assert!(Placement::new(PlacementKind::Even, 500, 3).is_err());
    }

    #[test]
    fn fetch_candidates_lead_with_the_predesignated_replica() {
        let pl = Placement::new(PlacementKind::Even, 10, 3).unwrap();
        // var 0 → replicas {0, 1, 2}; from site 9 the order is 0, 1, 2.
        assert_eq!(
            pl.fetch_candidates(VarId(0), SiteId(9)),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );
        // From site 4 the nearest is 2, then 1, then 0.
        assert_eq!(
            pl.fetch_candidates(VarId(0), SiteId(4)),
            vec![SiteId(2), SiteId(1), SiteId(0)]
        );
    }

    proptest! {
        #[test]
        fn prop_fetch_candidates_cover_replicas_and_agree_with_target(
            n in 2usize..50,
            v in 0u32..200,
            s in 0usize..50,
        ) {
            prop_assume!(s < n);
            let pl = Placement::paper_partial(n).unwrap();
            let cands = pl.fetch_candidates(VarId(v), SiteId::from(s));
            prop_assert_eq!(cands.len(), pl.p());
            prop_assert_eq!(cands[0], pl.fetch_target(VarId(v), SiteId::from(s)));
            for c in &cands {
                prop_assert!(pl.replicas(VarId(v)).contains(*c));
            }
        }

        #[test]
        fn prop_replica_count_is_p(n in 1usize..60, pfrac in 0.05f64..1.0, v in 0u32..500) {
            let p = ((n as f64 * pfrac).ceil() as usize).clamp(1, n);
            for kind in [PlacementKind::Even, PlacementKind::Hashed { seed: 7 }] {
                let pl = Placement::new(kind, n, p).unwrap();
                prop_assert_eq!(pl.replicas(VarId(v)).len(), p);
            }
        }

        #[test]
        fn prop_fetch_target_member(n in 2usize..50, v in 0u32..200, s in 0usize..50) {
            prop_assume!(s < n);
            let pl = Placement::paper_partial(n).unwrap();
            let t = pl.fetch_target(VarId(v), SiteId::from(s));
            prop_assert!(pl.replicas(VarId(v)).contains(t));
        }
    }
}
