//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, range/tuple/vec/`prop_map`/`prop_oneof` strategies,
//! `any::<T>()`, `prop_assert*`, `prop_assume` and
//! `ProptestConfig::with_cases` — over a deterministic per-test RNG.
//! Differences from upstream: no shrinking (a failing case panics with
//! the sampled values unminimized), no persistence files, and each test's
//! random stream is a fixed function of its name, so failures reproduce
//! exactly on every run.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test's name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among alternatives (see [`prop_oneof!`]).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_unsigned_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = self.end as u128 - self.start as u128;
                (self.start as u128 + (rng.next_u64() as u128) % width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = hi as u128 - lo as u128 + 1;
                (lo as u128 + (rng.next_u64() as u128) % width) as $t
            }
        }
    )*};
}
impl_unsigned_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
    )*};
}
impl_signed_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = (*r.start(), *r.end());
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property (panics — this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err("assumption failed");
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define deterministic property tests (see module docs for differences
/// from upstream proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _ in 0..config.cases {
                    let mut case = || -> ::core::result::Result<(), &'static str> {
                        $( let $pat = $crate::Strategy::sample(&($strategy), &mut rng); )+
                        { $body }
                        ::core::result::Result::Ok(())
                    };
                    // Err means a prop_assume! rejected the case; skip it.
                    let _outcome = case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let vecs = crate::collection::vec(0u64..10, 3..6);
        for _ in 0..200 {
            let v = vecs.sample(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let t = (0u8..4, 1usize..=2).sample(&mut rng);
            assert!(t.0 < 4 && (1..=2).contains(&t.1));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn self_test_harness(x in 0u32..50, mut v in crate::collection::vec(0u8..3, 0..4)) {
            prop_assume!(x != 13);
            v.push(0);
            prop_assert!(x < 50 && x != 13);
            prop_assert_eq!(*v.last().unwrap(), 0u8);
        }

        #[test]
        fn self_test_oneof_and_map(tag in prop_oneof![
            (0usize..3).prop_map(|i| i as u64),
            (10usize..13).prop_map(|i| i as u64),
        ]) {
            prop_assert!(tag < 3 || (10..13).contains(&tag));
        }
    }
}
