//! The Opt-Track-CRP protocol (full replication, 2-tuple log).
//!
//! §III-C of the paper: under full replication every write goes to every
//! site, so destination lists carry no information and each dependency is
//! the 2-tuple `⟨i, clock_i⟩`. The local log resets to the write's own tuple
//! after every write and grows by at most one tuple per read — `d + 1`
//! entries, `d` being the number of reads since the last local write. This
//! is the `O(d)` (effectively constant) per-message overhead that beats
//! optP's `O(n)` vector in Figs. 5–8 / Table III.

use crate::effect::{Effect, ReadResult};
use crate::factory::ProtocolKind;
use crate::msg::{Msg, Sm, SmMeta};
use crate::pending::{PendingQueues, ProtoTrace, ProtoTraceEvent};
use crate::reliable::{OwnLedger, PeerAckInfo, SyncState};
use crate::replication::Replication;
use crate::site::{GcStats, ProtocolSite, StableCut};
use causal_clocks::CrpLog;
use causal_types::{MetaSized, SiteId, SizeModel, VarId, VersionedValue, WriteId};
use std::collections::HashMap;
use std::sync::Arc;

/// A parked Opt-Track-CRP update (shared tuple-log snapshot).
#[derive(Clone, Debug)]
struct PendingSm {
    var: VarId,
    value: VersionedValue,
    clock: u64,
    log: Arc<CrpLog>,
}

#[derive(Clone)]
struct ApplyState {
    values: HashMap<VarId, VersionedValue>,
    /// `LastWriteOn⟨h⟩` — under CRP only the applied write's own tuple is
    /// stored ("only w' itself needs to be stored in LastWriteOn_i⟨x_h⟩").
    last_write_on: HashMap<VarId, WriteId>,
    apply: Vec<u64>,
    /// Under full replication every write from an origin reaches every site
    /// in clock order, so the applied count equals the applied clock; we
    /// still track clocks for uniformity with Opt-Track.
    last_clock: Vec<u64>,
    applied_effects: Vec<Effect>,
}

/// One site running Opt-Track-CRP.
#[derive(Clone)]
pub struct OptTrackCrp {
    site: SiteId,
    n: usize,
    repl: Arc<dyn Replication>,
    /// `clock_i` — local write counter.
    clock: u64,
    /// The local dependency log (`≤ d + 1` tuples).
    log: CrpLog,
    state: ApplyState,
    pending: PendingQueues<PendingSm>,
    trace: ProtoTrace,
}

impl OptTrackCrp {
    /// Create the CRP state machine for `site`. The placement must be full
    /// replication — the protocol's correctness depends on it.
    pub fn new(site: SiteId, repl: Arc<dyn Replication>) -> Self {
        assert!(
            repl.is_full(),
            "Opt-Track-CRP requires full replication (p = n)"
        );
        let n = repl.n();
        OptTrackCrp {
            site,
            n,
            repl,
            clock: 0,
            log: CrpLog::new(),
            state: ApplyState {
                values: HashMap::new(),
                last_write_on: HashMap::new(),
                apply: vec![0; n],
                last_clock: vec![0; n],
                applied_effects: Vec::new(),
            },
            pending: PendingQueues::new(n),
            trace: ProtoTrace::default(),
        }
    }

    /// Activation predicate: every dependency tuple must be applied here.
    /// The sender's own tuples are additionally covered by per-sender FIFO.
    fn ready(state: &ApplyState, _sender: SiteId, m: &PendingSm) -> bool {
        Self::blocking_dep(state, m).is_none()
    }

    /// The first dependency tuple not yet applied here (trace witness);
    /// `None` when the predicate holds.
    fn blocking_dep(state: &ApplyState, m: &PendingSm) -> Option<(SiteId, u64)> {
        m.log
            .iter()
            .find(|w| state.last_clock[w.site.index()] < w.clock)
            .map(|w| (w.site, w.clock))
    }

    fn apply_update(state: &mut ApplyState, sender: SiteId, m: PendingSm) {
        debug_assert_eq!(
            state.last_clock[sender.index()] + 1,
            m.clock,
            "full replication delivers every write of an origin, in order"
        );
        state.values.insert(m.var, m.value);
        state.apply[sender.index()] += 1;
        state.last_clock[sender.index()] = m.clock;
        state.last_write_on.insert(m.var, m.value.writer);
        state.applied_effects.push(Effect::Applied {
            var: m.var,
            write: m.value.writer,
        });
    }

    fn drain(&mut self) -> Vec<Effect> {
        self.pending
            .drain(&mut self.state, Self::ready, Self::apply_update);
        std::mem::take(&mut self.state.applied_effects)
    }

    /// Current log length (`d + 1` of §III-C; Table III's size driver).
    pub fn log_size(&self) -> usize {
        self.log.len()
    }
}

impl ProtocolSite for OptTrackCrp {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::OptTrackCrp
    }

    fn site(&self) -> SiteId {
        self.site
    }

    fn n(&self) -> usize {
        self.n
    }

    fn write(&mut self, var: VarId, data: u64, payload_len: u32) -> (WriteId, Vec<Effect>) {
        self.clock += 1;
        let wid = WriteId::new(self.site, self.clock);
        let value = VersionedValue::with_payload(wid, data, payload_len);

        // Piggyback the pre-write log (own previous write tuple + one tuple
        // per distinct origin read since then); one shared snapshot serves
        // the whole fan-out.
        // "Full replication" means every *member* of the current view; a
        // dynamic placement excludes departed or not-yet-joined slots.
        let piggyback = Arc::new(self.log.clone());
        let mut effects = Vec::with_capacity(self.n);
        for k in self.repl.replicas(var).iter() {
            if k != self.site {
                effects.push(Effect::Send {
                    to: k,
                    msg: Msg::Sm(Sm {
                        var,
                        value,
                        meta: SmMeta::Crp {
                            clock: self.clock,
                            log: Arc::clone(&piggyback),
                        },
                    }),
                });
            }
        }

        // "The local log always incurs reset after each write."
        self.log.reset_to(wid);

        // Local apply (full replication: the writer always replicates).
        self.state.values.insert(var, value);
        self.state.apply[self.site.index()] += 1;
        self.state.last_clock[self.site.index()] = self.clock;
        self.state.last_write_on.insert(var, wid);
        effects.push(Effect::Applied { var, write: wid });
        effects.extend(self.drain());
        (wid, effects)
    }

    fn read(&mut self, var: VarId) -> ReadResult {
        // Full replication: reads are always local. Reading establishes the
        // →co edge by observing the value's write tuple.
        if let Some(w) = self.state.last_write_on.get(&var) {
            self.log.observe(*w);
        }
        ReadResult::Local(self.state.values.get(&var).copied())
    }

    fn on_message(&mut self, from: SiteId, msg: Msg) -> Vec<Effect> {
        match msg {
            Msg::Sm(sm) => {
                let SmMeta::Crp { clock, log } = sm.meta else {
                    panic!("Opt-Track-CRP site received a foreign SM meta");
                };
                // Post-recovery duplicate suppression: an SM at or below
                // the per-origin delivery high-water is a retransmission
                // whose effect is already folded into the installed sync
                // snapshot (or covered by a peer-recovery fast-forward);
                // re-applying it would roll the variable backwards.
                if clock <= self.state.last_clock[from.index()] {
                    return Vec::new();
                }
                let m = PendingSm {
                    var: sm.var,
                    value: sm.value,
                    clock,
                    log,
                };
                if self.trace.enabled() {
                    if let Some((dep_site, dep_clock)) = Self::blocking_dep(&self.state, &m) {
                        self.trace.emit(ProtoTraceEvent::Buffered {
                            origin: m.value.writer.site,
                            clock: m.value.writer.clock,
                            var: m.var,
                            dep_site,
                            dep_clock,
                        });
                    }
                }
                self.pending.push(from, m);
                self.drain()
            }
            other => panic!(
                "Opt-Track-CRP never receives {:?} messages: reads are local \
                 under full replication",
                other.kind()
            ),
        }
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn local_meta_size(&self, model: &SizeModel) -> u64 {
        // Log tuples + one stored tuple per written variable.
        self.log.meta_size(model) + model.scalars(2 * self.state.last_write_on.len())
    }

    fn value_of(&self, var: VarId) -> Option<VersionedValue> {
        self.state.values.get(&var).copied()
    }

    fn log_len(&self) -> Option<usize> {
        Some(self.log.len())
    }

    fn gc_stable(&mut self, cut: &StableCut) -> GcStats {
        // Tuples at or below the stable frontier piggyback constraints that
        // are vacuous at every live member; likewise a stable stored
        // `LastWriteOn` tuple would only ever feed such a vacuous observe.
        let log_entries = self.log.prune_stable(cut.clocks);
        let before = self.state.last_write_on.len();
        self.state
            .last_write_on
            .retain(|_, w| cut.clocks.get(w.site.index()).is_none_or(|&f| w.clock > f));
        GcStats {
            log_entries,
            slots: before - self.state.last_write_on.len(),
        }
    }

    fn own_ledger(&self) -> OwnLedger {
        // Under full replication every own write counts toward every site,
        // so the durable per-destination row is uniformly `clock_i`.
        OwnLedger {
            site: self.site,
            own_clock: self.clock,
            own_row: vec![self.clock; self.n],
            self_applied: self.state.apply[self.site.index()],
        }
    }

    fn drop_var(&mut self, var: VarId) {
        self.state.values.remove(&var);
        self.state.last_write_on.remove(&var);
    }

    fn restore_own_ledger(&mut self, ledger: &OwnLedger) {
        // Fail-soft WAL truncation may have replayed fewer own writes than
        // the durable ledger records; never reuse a clock (= WriteId).
        self.clock = self.clock.max(ledger.own_clock);
        let me = self.site.index();
        self.state.last_clock[me] = self.state.last_clock[me].max(self.clock);
        self.state.apply[me] = self.state.apply[me].max(ledger.self_applied);
    }

    fn crash_volatile(&mut self) -> (OwnLedger, usize) {
        let ledger = self.own_ledger();
        self.log = CrpLog::new();
        if self.clock > 0 {
            // Post-recovery writes causally follow the last pre-crash write;
            // keep its tuple so the next piggyback still says so.
            self.log.observe(WriteId::new(self.site, self.clock));
        }
        self.state.values.clear();
        self.state.last_write_on.clear();
        self.state.apply = vec![0; self.n];
        self.state.apply[self.site.index()] = ledger.self_applied;
        self.state.last_clock = vec![0; self.n];
        self.state.last_clock[self.site.index()] = self.clock;
        self.state.applied_effects.clear();
        let mut dropped = 0;
        for s in SiteId::all(self.n) {
            dropped += self.pending.clear_sender(s);
        }
        (ledger, dropped)
    }

    fn note_peer_recovery(&mut self, peer: SiteId, ledger: &OwnLedger) -> (Vec<Effect>, usize) {
        // The peer's unacked pre-crash writes are lost; fast-forward to its
        // durable write counter so dependencies on them can fire, and drop
        // parked updates from the peer — they sit inside the acked prefix
        // the fast-forward now covers.
        let dropped = self.pending.clear_sender(peer);
        let p = peer.index();
        self.state.last_clock[p] = self.state.last_clock[p].max(ledger.own_clock);
        self.state.apply[p] = self.state.apply[p].max(ledger.own_clock);
        (self.drain(), dropped)
    }

    fn export_sync(&self, _requester: SiteId) -> SyncState {
        // Full replication: every variable lives everywhere.
        SyncState::Crp {
            log: self.log.clone(),
            applied: self.state.last_clock.clone(),
            vars: self
                .state
                .values
                .iter()
                .map(|(v, val)| (*v, *val))
                .collect(),
        }
    }

    fn applied_horizon(&self) -> Option<Vec<u64>> {
        Some(self.state.last_clock.clone())
    }

    fn install_sync(&mut self, sources: &[(SiteId, PeerAckInfo, SyncState)]) {
        // Donor `known` vector attests `w`: the donor applied the write, so
        // its effect is folded into every value the donor exports.
        let knows =
            |known: &[u64], w: WriteId| known.get(w.site.index()).is_some_and(|&hw| hw >= w.clock);
        // The snapshot horizon: per origin, the highest clock any donor has
        // applied (plus the acked prefix of each donor's own stream). The
        // installed values reflect exactly this causally-closed cut, so the
        // delivery counters must fast-forward all the way to it: stopping at
        // the acked prefix would let the unacked remainder redeliver and
        // roll the installed values backwards, and would let fresh writes
        // whose transitive dependencies sit inside the skipped prefix apply
        // before those dependencies (the d+1-tuple log cannot re-park them).
        let mut horizon = vec![0u64; self.n];
        let mut best: HashMap<VarId, (VersionedValue, &[u64])> = HashMap::new();
        for (peer, ack, state) in sources {
            let SyncState::Crp { log, applied, vars } = state else {
                panic!("Opt-Track-CRP site received a foreign sync snapshot");
            };
            horizon[peer.index()] = horizon[peer.index()].max(ack.sm_max_clock);
            for (j, hw) in applied.iter().enumerate() {
                horizon[j] = horizon[j].max(*hw);
            }
            // Merge every live peer's dependency log: a safe
            // over-approximation of pre-crash causal knowledge.
            self.log.merge(log);
            // Per variable, prefer the value whose donor provably applied
            // the rival's write and still kept this one; the bare
            // `(clock, site)` order can resurrect a causally-overwritten
            // value whose overwriter carries a smaller clock.
            for (var, value) in vars {
                let better = match best.get(var) {
                    None => true,
                    Some((b, b_known)) => {
                        let v_covers_b = knows(applied, b.writer);
                        let b_covers_v = knows(b_known, value.writer);
                        if v_covers_b != b_covers_v {
                            v_covers_b
                        } else {
                            (value.writer.clock, value.writer.site)
                                > (b.writer.clock, b.writer.site)
                        }
                    }
                };
                if better {
                    best.insert(*var, (*value, applied.as_slice()));
                }
            }
        }
        for (var, (value, known)) in best {
            // Install unless it would roll a WAL-replayed local state back:
            // the donor attesting the local write makes its value at least
            // as fresh; otherwise fall back to the writer-pair order.
            let newer = self.state.values.get(&var).is_none_or(|cur| {
                knows(known, cur.writer)
                    || (value.writer.clock, value.writer.site) > (cur.writer.clock, cur.writer.site)
            });
            if newer {
                self.state.last_write_on.insert(var, value.writer);
                self.state.values.insert(var, value);
            }
        }
        // Never regress: a WAL-replayed site may already count deliveries
        // beyond any donor's horizon.
        for (j, hw) in horizon.iter().enumerate() {
            let apply = &mut self.state.apply[j];
            *apply = (*apply).max(*hw);
            let last = &mut self.state.last_clock[j];
            *last = (*last).max(*hw);
        }
    }

    fn clone_box(&self) -> Box<dyn ProtocolSite> {
        Box::new(self.clone())
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_trace(&mut self) -> Vec<ProtoTraceEvent> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::FullReplication;

    fn system(n: usize) -> Vec<OptTrackCrp> {
        let repl = Arc::new(FullReplication::new(n));
        SiteId::all(n)
            .map(|s| OptTrackCrp::new(s, repl.clone()))
            .collect()
    }

    fn sends(effects: &[Effect]) -> Vec<(SiteId, Sm)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    msg: Msg::Sm(sm),
                } => Some((*to, sm.clone())),
                _ => None,
            })
            .collect()
    }

    fn applied(effects: &[Effect]) -> Vec<WriteId> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Applied { write, .. } => Some(*write),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn write_goes_to_all_other_sites() {
        let mut sys = system(4);
        let (wid, effects) = sys[0].write(VarId(0), 1, 0);
        assert_eq!(sends(&effects).len(), 3);
        assert_eq!(applied(&effects), vec![wid]);
    }

    #[test]
    fn log_resets_on_write_and_grows_with_reads() {
        let mut sys = system(3);
        // Seed values from two different origins.
        let (_w1, e1) = sys[1].write(VarId(1), 10, 0);
        let (_w2, e2) = sys[2].write(VarId(2), 20, 0);
        for (to, sm) in sends(&e1) {
            if to == SiteId(0) {
                sys[0].on_message(SiteId(1), Msg::Sm(sm));
            }
        }
        for (to, sm) in sends(&e2) {
            if to == SiteId(0) {
                sys[0].on_message(SiteId(2), Msg::Sm(sm));
            }
        }
        assert_eq!(sys[0].log_size(), 0);
        sys[0].read(VarId(1));
        assert_eq!(sys[0].log_size(), 1, "one tuple per read origin");
        sys[0].read(VarId(2));
        assert_eq!(sys[0].log_size(), 2);
        sys[0].read(VarId(1));
        assert_eq!(
            sys[0].log_size(),
            2,
            "re-reading the same origin adds nothing"
        );
        sys[0].write(VarId(0), 5, 0);
        assert_eq!(
            sys[0].log_size(),
            1,
            "write resets the log to its own tuple"
        );
    }

    #[test]
    fn causal_order_enforced_through_reads() {
        let mut sys = system(3);
        let (w1, e1) = sys[0].write(VarId(0), 1, 0);
        let sm_x_to_1 = sends(&e1)
            .iter()
            .find(|(t, _)| *t == SiteId(1))
            .unwrap()
            .1
            .clone();
        let sm_x_to_2 = sends(&e1)
            .iter()
            .find(|(t, _)| *t == SiteId(2))
            .unwrap()
            .1
            .clone();

        sys[1].on_message(SiteId(0), Msg::Sm(sm_x_to_1));
        sys[1].read(VarId(0));
        let (w2, e2) = sys[1].write(VarId(1), 2, 0);
        let sm_y_to_2 = sends(&e2)
            .iter()
            .find(|(t, _)| *t == SiteId(2))
            .unwrap()
            .1
            .clone();

        // y first: parked (its log lists ⟨s0, 1⟩, unapplied at s2).
        let eff = sys[2].on_message(SiteId(1), Msg::Sm(sm_y_to_2));
        assert!(applied(&eff).is_empty());
        // x arrives: both apply in causal order.
        let eff = sys[2].on_message(SiteId(0), Msg::Sm(sm_x_to_2));
        assert_eq!(applied(&eff), vec![w1, w2]);
    }

    #[test]
    fn piggyback_stays_small_under_write_heavy_load() {
        let mut sys = system(5);
        let model = SizeModel::java_like();
        let mut max_sm = 0u64;
        for round in 0..40u64 {
            let writer = (round % 5) as usize;
            let (_w, effects) = sys[writer].write(VarId((round % 9) as u32), round, 0);
            let outgoing = sends(&effects);
            for (to, sm) in outgoing {
                max_sm = max_sm.max(Msg::Sm(sm.clone()).meta_size(&model));
                let eff_kind = sys[to.index()].on_message(SiteId::from(writer), Msg::Sm(sm));
                let _ = eff_kind;
            }
            // Everyone reads the variable they just saw.
            for site in sys.iter_mut() {
                site.read(VarId((round % 9) as u32));
            }
        }
        // Pure write-heavy load: log ≤ (own tuple + a few read tuples);
        // SM size must stay far below optP's 209 + 10·n for large n — here
        // just sanity-check the absolute bound: base + sender tuple + ≤ 6
        // log tuples.
        assert!(max_sm <= 209 + 20 + 6 * 20, "max SM was {max_sm}");
    }

    #[test]
    fn gc_stable_prunes_tuples_and_stored_last_writes() {
        use causal_clocks::MatrixClock;
        let mut sys = system(3);
        // Seed values from two origins, read both at s0 so its log carries
        // one tuple per origin and LastWriteOn holds both tuples.
        let (_w1, e1) = sys[1].write(VarId(1), 10, 0);
        let (_w2, e2) = sys[2].write(VarId(2), 20, 0);
        for (to, sm) in sends(&e1) {
            if to == SiteId(0) {
                sys[0].on_message(SiteId(1), Msg::Sm(sm));
            }
        }
        for (to, sm) in sends(&e2) {
            if to == SiteId(0) {
                sys[0].on_message(SiteId(2), Msg::Sm(sm));
            }
        }
        sys[0].read(VarId(1));
        sys[0].read(VarId(2));
        assert_eq!(sys[0].log_size(), 2);

        let counts = MatrixClock::new(3);
        // Only origin 1's write is stable: its tuple and stored last-write
        // go; origin 2's stay.
        let cut = StableCut {
            clocks: &[0, 1, 0],
            counts: &counts,
        };
        let stats = sys[0].gc_stable(&cut);
        assert_eq!(stats.log_entries, 1, "stats: {stats:?}");
        assert_eq!(stats.slots, 1, "stats: {stats:?}");
        assert_eq!(sys[0].log_size(), 1);
        assert!(sys[0].gc_stable(&cut).is_empty(), "idempotent");

        // Values survive; re-reading a GC'd variable is still fine (the
        // vacuous observe is simply skipped).
        match sys[0].read(VarId(1)) {
            ReadResult::Local(Some(v)) => assert_eq!(v.data, 10),
            other => panic!("expected local value, got {other:?}"),
        }
        assert_eq!(sys[0].log_size(), 1, "no tuple re-materializes");
    }

    #[test]
    #[should_panic(expected = "full replication")]
    fn rejects_partial_replication() {
        use crate::opt_track::OptTrack;
        // A partial placement must be rejected at construction.
        let repl: Arc<dyn Replication> = Arc::new(PartialToy);
        let _ok = OptTrack::new(SiteId(0), repl.clone()); // fine for Opt-Track
        let _crp = OptTrackCrp::new(SiteId(0), repl); // must panic
    }

    struct PartialToy;
    impl Replication for PartialToy {
        fn n(&self) -> usize {
            3
        }
        fn replicas(&self, _var: VarId) -> causal_clocks::DestSet {
            causal_clocks::DestSet::from_sites([SiteId(0)])
        }
        fn fetch_target(&self, _var: VarId, _site: SiteId) -> SiteId {
            SiteId(0)
        }
        fn is_full(&self) -> bool {
            false
        }
    }
}
