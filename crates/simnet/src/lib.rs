//! # causal-simnet
//!
//! A deterministic discrete-event simulator for the causal-consistency
//! protocols — the substrate for every experiment in the paper reproduction.
//!
//! ## Relationship to the paper's testbed
//!
//! The paper (§IV) ran the protocols as JDK 8 processes over real TCP
//! connections, driven by `ScheduledExecutorService` timers. TCP there
//! provides exactly three guarantees the protocols rely on: reliability, no
//! duplication, and FIFO order per channel. [`channel`] provides the same
//! guarantees over a virtual-time event queue, with configurable latency
//! ([`LatencyModel`]); because the measured quantities — message counts and
//! metadata bytes — are functions of protocol logic and operation schedule
//! only, the substitution preserves the paper's results while making every
//! run exactly reproducible from a seed. (See DESIGN.md §2.)
//!
//! ## Structure
//!
//! * [`kernel`] — the event heap and virtual clock;
//! * [`channel`] — reliable FIFO channels with latency models;
//! * [`sim`] — the full-system driver: schedules application operations,
//!   routes protocol effects, gathers [`causal_metrics::RunMetrics`] and
//!   records a [`causal_checker::History`] for post-run verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod channel;
pub mod kernel;
pub mod sim;
pub mod stability;
pub mod transport;

pub use channel::{BurstWindow, ChannelFault, FaultPlan, LatencyModel, PartitionWindow};
pub use kernel::{EventHeap, SimEvent};
pub use sim::{
    run, run_traced, BatchPlan, CrashWindow, DurabilityPlan, PauseWindow, SimConfig, SimResult,
};
pub use stability::StabilityPlan;
pub use transport::{Transport, TransportCmd, TransportTuning};
