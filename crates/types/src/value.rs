//! Values stored in replicas.

use crate::ids::WriteId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The value held by a variable replica, tagged with provenance.
///
/// The paper's variables start at `⊥` (represented by `Option::None` at the
/// storage layer) and are overwritten by write operations. We carry the
/// [`WriteId`] of the producing write alongside the raw data so that
/// executions can be checked for causal consistency after the fact: a read
/// returning a `VersionedValue` pins down the *reads-from* edge exactly.
///
/// `payload_len` models the size of the application payload (the paper notes
/// that real payloads — photos, videos, web pages — dwarf the metadata; the
/// experiments measure metadata only, but examples and the analytic model in
/// §V-C use the payload size).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VersionedValue {
    /// The write operation that produced this value.
    pub writer: WriteId,
    /// The raw data (a synthetic 64-bit application value).
    pub data: u64,
    /// Modeled length in bytes of the application payload this value stands
    /// in for. Not transmitted as metadata; used by the payload-aware
    /// analytic comparisons.
    pub payload_len: u32,
}

impl VersionedValue {
    /// Create a value produced by `writer` with the given synthetic data and
    /// zero modeled payload length.
    pub fn new(writer: WriteId, data: u64) -> Self {
        VersionedValue {
            writer,
            data,
            payload_len: 0,
        }
    }

    /// Create a value with an explicit modeled payload length.
    pub fn with_payload(writer: WriteId, data: u64, payload_len: u32) -> Self {
        VersionedValue {
            writer,
            data,
            payload_len,
        }
    }
}

impl fmt::Debug for VersionedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.writer, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    #[test]
    fn construction_and_provenance() {
        let w = WriteId::new(SiteId(3), 42);
        let v = VersionedValue::new(w, 7);
        assert_eq!(v.writer, w);
        assert_eq!(v.data, 7);
        assert_eq!(v.payload_len, 0);
    }

    #[test]
    fn payload_length_is_carried() {
        let w = WriteId::new(SiteId(0), 1);
        let v = VersionedValue::with_payload(w, 0, 679_000);
        assert_eq!(v.payload_len, 679_000);
    }
}
