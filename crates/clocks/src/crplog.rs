//! The Opt-Track-CRP log of `⟨j, clock_j⟩` 2-tuples.
//!
//! In the fully replicated case every write goes to every site, so the
//! destination lists of Opt-Track entries carry no information and each
//! write is represented by the 2-tuple `⟨i, clock_i⟩` — an `O(1)` record
//! instead of `O(n)` (§III-C). The log dynamics collapse to:
//!
//! * a **write** resets the log — the new send causally follows everything
//!   in it and is addressed to all sites, so condition 2 empties every older
//!   entry; only the new write's own 2-tuple remains;
//! * a **read** merges at most one 2-tuple (the tuple of the write that
//!   produced the value), and per origin only the newest tuple is kept;
//!
//! hence at most `d + 1` entries, where `d` is the number of reads since the
//! local site's last write.

use causal_types::{MetaSized, SiteId, SizeModel, WriteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Log of write 2-tuples, at most one per origin (the newest).
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrpLog {
    /// Sorted by origin; at most one entry per origin.
    entries: Vec<WriteId>,
}

impl CrpLog {
    /// The empty log.
    pub fn new() -> Self {
        CrpLog::default()
    }

    /// Number of 2-tuples in the log (`≤ d + 1 ≤ n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the log holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in origin order.
    pub fn iter(&self) -> impl Iterator<Item = &WriteId> {
        self.entries.iter()
    }

    /// The newest clock known for `origin`, if any.
    pub fn clock_of(&self, origin: SiteId) -> Option<u64> {
        self.entries
            .binary_search_by(|e| e.site.cmp(&origin))
            .ok()
            .map(|i| self.entries[i].clock)
    }

    /// Merge one write 2-tuple (performed by a read observing the
    /// `LastWriteOn⟨h⟩` of the value it returns). Keeps only the newest
    /// tuple per origin: "if some of these read operations retrieve
    /// variables that are updated by the same application process, only the
    /// entry associated with the very last read operation needs to be kept".
    pub fn observe(&mut self, w: WriteId) {
        match self.entries.binary_search_by(|e| e.site.cmp(&w.site)) {
            Ok(i) => {
                if self.entries[i].clock < w.clock {
                    self.entries[i].clock = w.clock;
                }
            }
            Err(i) => self.entries.insert(i, w),
        }
    }

    /// Reset after a local write: the log becomes exactly the write's own
    /// 2-tuple ("the local log always incurs reset after each write").
    pub fn reset_to(&mut self, w: WriteId) {
        self.entries.clear();
        self.entries.push(w);
    }

    /// Merge a whole piggybacked log (used when adapting CRP logs for
    /// diagnostic comparisons; protocol reads only need [`CrpLog::observe`]).
    pub fn merge(&mut self, other: &CrpLog) {
        for w in &other.entries {
            self.observe(*w);
        }
    }

    /// Causal-stability GC: drop every 2-tuple at or below the stable
    /// `frontier` — a stable write is applied at every live site, so the
    /// delivery constraint its tuple would piggyback is vacuous everywhere.
    /// Returns the number of tuples removed.
    pub fn prune_stable(&mut self, frontier: &[u64]) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|e| frontier.get(e.site.index()).is_none_or(|&f| e.clock > f));
        before - self.entries.len()
    }
}

/// Difference between two CRP logs from the same site.
///
/// CRP logs are tiny (`≤ d + 1` tuples) but *not* monotone — a write resets
/// the log, so a successor snapshot can lose tuples and even carry a lower
/// clock for an origin. The delta therefore records exact replacements
/// (`upserts`, tuples present in the successor with a different clock or
/// absent from the predecessor) and exact `removals` (origins the successor
/// dropped); applying it replaces rather than [`CrpLog::observe`]s, which
/// would keep the stale maximum.
///
/// Exactness invariant: `CrpDelta::between(p, n).apply_to(p) == n`.
#[derive(Clone, PartialEq, Debug)]
pub struct CrpDelta {
    /// Tuples to insert or overwrite, sorted by origin.
    pub upserts: Vec<WriteId>,
    /// Origins to drop, sorted.
    pub removals: Vec<SiteId>,
}

impl CrpDelta {
    /// Compute the delta that turns `prev` into `next`.
    pub fn between(prev: &CrpLog, next: &CrpLog) -> CrpDelta {
        let mut upserts = Vec::new();
        let mut removals = Vec::new();
        let (a, b) = (&prev.entries, &next.entries);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) if x.site == y.site => {
                    if x.clock != y.clock {
                        upserts.push(*y);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(x), Some(y)) if x.site < y.site => {
                    removals.push(x.site);
                    i += 1;
                }
                (Some(_), Some(y)) => {
                    upserts.push(*y);
                    j += 1;
                }
                (Some(x), None) => {
                    removals.push(x.site);
                    i += 1;
                }
                (None, Some(y)) => {
                    upserts.push(*y);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        CrpDelta { upserts, removals }
    }

    /// Reconstruct the successor snapshot from its predecessor.
    pub fn apply_to(&self, prev: &CrpLog) -> CrpLog {
        let mut entries = Vec::with_capacity(prev.entries.len() + self.upserts.len());
        let mut ups = self.upserts.iter().peekable();
        let mut rms = self.removals.iter().peekable();
        for e in &prev.entries {
            while let Some(&&up) = ups.peek() {
                if up.site < e.site {
                    entries.push(up);
                    ups.next();
                } else {
                    break;
                }
            }
            if ups.peek().is_some_and(|up| up.site == e.site) {
                entries.push(*ups.next().unwrap());
                continue;
            }
            if rms.peek().is_some_and(|&&rm| rm == e.site) {
                rms.next();
                continue;
            }
            entries.push(*e);
        }
        entries.extend(ups.copied());
        CrpLog { entries }
    }
}

impl MetaSized for CrpDelta {
    /// Two scalars per replaced tuple plus one site id per removal.
    fn meta_size(&self, model: &SizeModel) -> u64 {
        model.scalars(2 * self.upserts.len()) + model.site_ids(self.removals.len())
    }
}

impl fmt::Debug for CrpLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CrpLog[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "⟨{},{}⟩", e.site, e.clock)?;
        }
        write!(f, "]")
    }
}

impl MetaSized for CrpLog {
    /// Each 2-tuple is two scalars. With the Java calibration this is the
    /// 20-bytes-per-entry growth visible in Table III.
    fn meta_size(&self, model: &SizeModel) -> u64 {
        model.scalars(2 * self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(site: usize, clock: u64) -> WriteId {
        WriteId::new(SiteId::from(site), clock)
    }

    #[test]
    fn observe_keeps_newest_per_origin() {
        let mut log = CrpLog::new();
        log.observe(w(1, 3));
        log.observe(w(1, 5));
        log.observe(w(1, 4)); // stale: ignored
        log.observe(w(2, 1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.clock_of(SiteId(1)), Some(5));
        assert_eq!(log.clock_of(SiteId(2)), Some(1));
    }

    #[test]
    fn reset_to_collapses_log() {
        let mut log = CrpLog::new();
        log.observe(w(1, 3));
        log.observe(w(2, 8));
        log.reset_to(w(0, 1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.clock_of(SiteId(0)), Some(1));
        assert_eq!(log.clock_of(SiteId(1)), None);
    }

    #[test]
    fn merge_unions_with_newest_semantics() {
        let mut a = CrpLog::new();
        a.observe(w(1, 3));
        let mut b = CrpLog::new();
        b.observe(w(1, 7));
        b.observe(w(2, 2));
        a.merge(&b);
        assert_eq!(a.clock_of(SiteId(1)), Some(7));
        assert_eq!(a.clock_of(SiteId(2)), Some(2));
    }

    #[test]
    fn prune_stable_drops_covered_tuples() {
        let mut log = CrpLog::new();
        log.observe(w(0, 4));
        log.observe(w(1, 2));
        log.observe(w(2, 9));
        // Origin 0 stable through 4, origin 1 through 1, origin 2 through 8.
        assert_eq!(log.prune_stable(&[4, 1, 8]), 1);
        assert_eq!(log.clock_of(SiteId(0)), None, "⟨0,4⟩ is stable");
        assert_eq!(log.clock_of(SiteId(1)), Some(2), "above frontier");
        assert_eq!(log.clock_of(SiteId(2)), Some(9), "above frontier");
    }

    #[test]
    fn meta_size_is_two_scalars_per_entry() {
        let m = SizeModel::java_like();
        let mut log = CrpLog::new();
        log.observe(w(1, 1));
        log.observe(w(2, 1));
        log.observe(w(3, 1));
        assert_eq!(log.meta_size(&m), 60);
    }

    #[test]
    fn delta_handles_reset_semantics_exactly() {
        // A write reset loses tuples and can *lower* an origin's clock —
        // apply must replace, never keep the stale maximum.
        let mut before = CrpLog::new();
        before.observe(w(0, 9));
        before.observe(w(2, 4));
        let mut after = CrpLog::new();
        after.reset_to(w(0, 1));
        let d = CrpDelta::between(&before, &after);
        assert_eq!(d.apply_to(&before), after);
        assert_eq!(after.clock_of(SiteId(0)), Some(1), "clock went down");
    }

    proptest! {
        #[test]
        fn prop_crp_delta_between_apply_is_identity(
            xs in proptest::collection::vec((0usize..8, 1u64..50), 0..24),
            ys in proptest::collection::vec((0usize..8, 1u64..50), 0..24),
            do_reset in any::<bool>(),
            reset in (0usize..8, 1u64..50),
        ) {
            let mut a = CrpLog::new();
            for (o, c) in xs {
                a.observe(w(o, c));
            }
            let mut b = a.clone();
            if do_reset {
                let (o, c) = reset;
                b.reset_to(w(o, c));
            }
            for (o, c) in ys {
                b.observe(w(o, c));
            }
            prop_assert_eq!(CrpDelta::between(&a, &b).apply_to(&a), b);
        }

        #[test]
        fn prop_at_most_one_entry_per_origin(ops in proptest::collection::vec((0usize..8, 1u64..50), 0..64)) {
            let mut log = CrpLog::new();
            for (o, c) in &ops {
                log.observe(w(*o, *c));
            }
            let mut origins: Vec<_> = log.iter().map(|e| e.site).collect();
            let before = origins.len();
            origins.dedup();
            prop_assert_eq!(origins.len(), before);
            // The retained clock per origin is the maximum observed.
            for (o, _) in &ops {
                let max = ops.iter().filter(|(oo, _)| oo == o).map(|&(_, c)| c).max().unwrap();
                prop_assert_eq!(log.clock_of(SiteId::from(*o)), Some(max));
            }
        }

        #[test]
        fn prop_size_bounded_by_origin_count(ops in proptest::collection::vec((0usize..8, 1u64..50), 0..64)) {
            let mut log = CrpLog::new();
            for (o, c) in ops {
                log.observe(w(o, c));
            }
            prop_assert!(log.len() <= 8);
        }
    }
}
