//! The verification pass.

use crate::history::{History, OpRecord};
use causal_types::{VarId, WriteId};
use std::collections::HashMap;

/// Violation counts found in a history, with capped human-readable examples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Violations {
    /// A site applied one origin's writes out of clock order (FIFO bug).
    pub fifo: u64,
    /// A site applied `w2` before a causally preceding `w1` it also applied
    /// — a genuine protocol bug (the activation predicate's guarantee).
    pub delivery: u64,
    /// A read returned a write that does not exist or wrote another
    /// variable.
    pub reads_from: u64,
    /// A read returned a value causally overwritten in the reader's past
    /// (strict causal-memory read anomaly; possible by design for remote
    /// fetches in partially replicated protocols).
    pub stale_reads: u64,
    /// A site applied its *own* write before a causally preceding remote
    /// write it later applies. Only reachable through a remote fetch whose
    /// returned value causally depends on an update still in flight to the
    /// fetcher: the writer then writes, and writers apply their own updates
    /// immediately. Like [`Violations::stale_reads`] this is a property of
    /// the published protocol (FM messages carry no causal context), not an
    /// implementation bug; it is impossible under full replication.
    pub own_write_races: u64,
    /// The history could not be causally ordered (cyclic reads-from or a
    /// read observing a write never issued) — indicates a corrupt recording.
    pub unresolved: u64,
    /// Operations or applies recorded for a site *after* its departure seal
    /// ([`History::seal_site`]) — a departed member kept mutating state,
    /// which the view-change quiescence protocol must prevent.
    pub out_of_view: u64,
    /// Up to ten human-readable descriptions of the first violations found.
    pub examples: Vec<String>,
}

impl Violations {
    /// `true` when the execution satisfies the protocol guarantees (FIFO +
    /// causal delivery + reads-from integrity). Stale remote reads are
    /// tolerated — see the crate docs.
    pub fn protocol_clean(&self) -> bool {
        self.fifo == 0
            && self.delivery == 0
            && self.reads_from == 0
            && self.unresolved == 0
            && self.out_of_view == 0
    }

    /// `true` when the execution additionally satisfies strict causal
    /// memory (fresh reads, no own-write races) — guaranteed under full
    /// replication, best-effort under partial replication.
    pub fn strictly_clean(&self) -> bool {
        self.protocol_clean() && self.stale_reads == 0 && self.own_write_races == 0
    }

    fn note(&mut self, msg: String) {
        if self.examples.len() < 10 {
            self.examples.push(msg);
        }
    }
}

impl std::fmt::Display for Violations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fifo={} delivery={} reads_from={} stale_reads={} own_write_races={} unresolved={} \
             out_of_view={}",
            self.fifo,
            self.delivery,
            self.reads_from,
            self.stale_reads,
            self.own_write_races,
            self.unresolved,
            self.out_of_view
        )
    }
}

/// Per-write causal timestamp: `vc[j]` = number of writes by process `j` in
/// the causal past of this write (inclusive of the write itself for its own
/// origin). `w1 ≺co w2  ⟺  w2.vc[w1.site] ≥ w1.clock`.
struct WriteInfo {
    vc: Vec<u64>,
    var: VarId,
}

/// Verify a recorded history. See [`Violations`] for what is checked.
pub fn check(history: &History) -> Violations {
    let n = history.n();
    let mut v = Violations::default();

    // ------------------------------------------------------------------
    // Pass 1: assign vector clocks to writes by sweeping the per-process
    // histories in causal order (a read blocks until the write it observed
    // has its clock; program order otherwise).
    // ------------------------------------------------------------------
    let mut writes: HashMap<WriteId, WriteInfo> = HashMap::new();
    // Writes per variable, for the freshness check (filled as resolved).
    let mut writes_on: HashMap<VarId, Vec<WriteId>> = HashMap::new();
    let mut cursor = vec![0usize; n];
    let mut proc_vc: Vec<Vec<u64>> = vec![vec![0; n]; n];
    // (reader, op index) of stale reads, resolved during the sweep.
    loop {
        let mut progressed = false;
        let mut done = true;
        for i in 0..n {
            let ops = &history.ops()[i];
            while cursor[i] < ops.len() {
                match &ops[cursor[i]] {
                    OpRecord::Write { write, var } => {
                        proc_vc[i][i] += 1;
                        if proc_vc[i][i] != write.clock {
                            // Clocks must be the per-process write counter.
                            v.unresolved += 1;
                            v.note(format!(
                                "write {write} out of clock sequence at s{i} \
                                 (expected clock {})",
                                proc_vc[i][i]
                            ));
                        }
                        writes.insert(
                            *write,
                            WriteInfo {
                                vc: proc_vc[i].clone(),
                                var: *var,
                            },
                        );
                        writes_on.entry(*var).or_default().push(*write);
                    }
                    OpRecord::Read {
                        var,
                        read_from,
                        served_by: _,
                    } => {
                        if let Some(w) = read_from {
                            let Some(info) = writes.get(w) else {
                                if history.ops()[w.site.index()].iter().any(
                                    |o| matches!(o, OpRecord::Write { write, .. } if write == w),
                                ) {
                                    // Not yet resolved: retry later.
                                    break;
                                }
                                v.reads_from += 1;
                                v.note(format!("read of {var} at s{i} observed unknown write {w}"));
                                cursor[i] += 1;
                                continue;
                            };
                            if info.var != *var {
                                v.reads_from += 1;
                                v.note(format!(
                                    "read of {var} at s{i} observed {w}, which wrote {}",
                                    info.var
                                ));
                            }
                            // Freshness: no write on `var` in the reader's
                            // causal past may causally follow the returned
                            // write.
                            let returned = *w;
                            let vc_snapshot = &proc_vc[i];
                            if let Some(candidates) = writes_on.get(var) {
                                for w1 in candidates {
                                    if *w1 == returned {
                                        continue;
                                    }
                                    let in_past = vc_snapshot[w1.site.index()] >= w1.clock;
                                    if !in_past {
                                        continue;
                                    }
                                    let overwrites = writes
                                        .get(w1)
                                        .map(|i1| i1.vc[returned.site.index()] >= returned.clock)
                                        .unwrap_or(false);
                                    if overwrites {
                                        v.stale_reads += 1;
                                        v.note(format!(
                                            "stale read of {var} at s{i}: returned {returned} \
                                             but {w1} (causally newer) is in the reader's past"
                                        ));
                                        break;
                                    }
                                }
                            }
                            // The read-from edge merges the writer's clock.
                            let w_vc = writes.get(w).map(|x| x.vc.clone());
                            if let Some(w_vc) = w_vc {
                                for (a, b) in proc_vc[i].iter_mut().zip(&w_vc) {
                                    *a = (*a).max(*b);
                                }
                            }
                        } else {
                            // ⊥ read: a violation if any write on var is in
                            // the reader's causal past.
                            if let Some(candidates) = writes_on.get(var) {
                                let vc_snapshot = &proc_vc[i];
                                if let Some(w1) = candidates
                                    .iter()
                                    .find(|w1| vc_snapshot[w1.site.index()] >= w1.clock)
                                {
                                    v.stale_reads += 1;
                                    v.note(format!(
                                        "⊥ read of {var} at s{i} despite {w1} in causal past"
                                    ));
                                }
                            }
                        }
                    }
                }
                cursor[i] += 1;
                progressed = true;
            }
            if cursor[i] < ops.len() {
                done = false;
            }
        }
        if done {
            break;
        }
        if !progressed {
            v.unresolved += 1;
            v.note("history not causally resolvable (cyclic reads-from?)".into());
            return v;
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: per-site apply sequences.
    // ------------------------------------------------------------------
    for k in 0..n {
        let seq = &history.applies()[k];
        // FIFO per origin: clocks strictly increase.
        let mut last_clock = vec![0u64; n];
        for w in seq {
            if w.clock <= last_clock[w.site.index()] {
                v.fifo += 1;
                v.note(format!(
                    "s{k} applied {w} after clock {} from the same origin",
                    last_clock[w.site.index()]
                ));
            }
            last_clock[w.site.index()] = w.clock;
        }

        // Causal delivery: for each apply position, every causally
        // preceding write from each origin that this site *ever* applies
        // must already be applied. Per origin, the applied subsequence is
        // clock-sorted (FIFO, checked above), so "how many of origin l's
        // applied writes precede w" is a binary search over clocks, and
        // their positions are increasing — compare the last one's position.
        let mut per_origin: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n]; // (clock, pos)
        for (pos, w) in seq.iter().enumerate() {
            per_origin[w.site.index()].push((w.clock, pos));
        }
        #[allow(clippy::needless_range_loop)]
        for (pos, w) in seq.iter().enumerate() {
            let Some(info) = writes.get(w) else {
                v.unresolved += 1;
                v.note(format!("s{k} applied unknown write {w}"));
                continue;
            };
            for l in 0..n {
                let bound = info.vc[l];
                if bound == 0 {
                    continue;
                }
                let col = &per_origin[l];
                // Applied writes from l with clock ≤ bound, excluding w
                // itself.
                let m = col.partition_point(|&(c, _)| c <= bound);
                if m == 0 {
                    continue;
                }
                let (c_last, p_last) = col[m - 1];
                // The applying site's own writes apply immediately by
                // design; a miss there is the documented remote-fetch race,
                // not a delivery bug (see `own_write_races`).
                let own_write = w.site.index() == k;
                if (l, c_last) == (w.site.index(), w.clock) {
                    // w itself is the last such write; check the previous.
                    if m >= 2 {
                        let (_, p_prev) = col[m - 2];
                        if p_prev > pos {
                            if own_write {
                                v.own_write_races += 1;
                            } else {
                                v.delivery += 1;
                            }
                            v.note(format!(
                                "s{k} applied {w} before an earlier write from s{l}"
                            ));
                        }
                    }
                } else if p_last > pos {
                    if own_write {
                        v.own_write_races += 1;
                    } else {
                        v.delivery += 1;
                    }
                    v.note(format!(
                        "s{k} applied {w} at pos {pos} before causally preceding \
                         w(s{l},{c_last}) at pos {p_last}"
                    ));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass 3: departure seals. Anything a site recorded after leaving the
    // view is activity the quiescence protocol failed to stop.
    // ------------------------------------------------------------------
    for (k, seal) in history.sealed().iter().enumerate() {
        let Some((ops_mark, applies_mark)) = seal else {
            continue;
        };
        let late_ops = history.ops()[k].len().saturating_sub(*ops_mark);
        let late_applies = history.applies()[k].len().saturating_sub(*applies_mark);
        if late_ops + late_applies > 0 {
            v.out_of_view += (late_ops + late_applies) as u64;
            v.note(format!(
                "s{k} recorded {late_ops} op(s) and {late_applies} apply(ies) \
                 after leaving the view"
            ));
        }
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_types::SiteId;

    fn w(site: usize, clock: u64) -> WriteId {
        WriteId::new(SiteId::from(site), clock)
    }

    /// w1 at s0; s1 reads it then writes w2: everyone must apply w1 < w2.
    fn causal_chain_history(good: bool) -> History {
        let mut h = History::new(3);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_read(SiteId(1), VarId(0), Some(w(0, 1)), SiteId(1));
        h.record_write(SiteId(1), w(1, 1), VarId(1));
        for k in 0..3 {
            if good || k != 2 {
                h.record_apply(SiteId::from(k), w(0, 1));
                h.record_apply(SiteId::from(k), w(1, 1));
            } else {
                // Site 2 inverts the causal order.
                h.record_apply(SiteId::from(k), w(1, 1));
                h.record_apply(SiteId::from(k), w(0, 1));
            }
        }
        h
    }

    #[test]
    fn clean_causal_chain_passes() {
        let v = check(&causal_chain_history(true));
        assert!(v.strictly_clean(), "{v:?}");
    }

    #[test]
    fn inverted_apply_order_is_a_delivery_violation() {
        let v = check(&causal_chain_history(false));
        assert_eq!(v.delivery, 1, "{v:?}");
        assert!(!v.protocol_clean());
    }

    #[test]
    fn concurrent_writes_may_apply_in_any_order() {
        // s0 and s1 write concurrently (no read between them): sites may
        // apply them in different orders.
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_write(SiteId(1), w(1, 1), VarId(0));
        h.record_apply(SiteId(0), w(0, 1));
        h.record_apply(SiteId(0), w(1, 1));
        h.record_apply(SiteId(1), w(1, 1));
        h.record_apply(SiteId(1), w(0, 1));
        let v = check(&h);
        assert!(v.strictly_clean(), "{v:?}");
    }

    #[test]
    fn fifo_violation_detected() {
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_write(SiteId(0), w(0, 2), VarId(0));
        h.record_apply(SiteId(1), w(0, 2));
        h.record_apply(SiteId(1), w(0, 1));
        let v = check(&h);
        assert!(v.fifo >= 1, "{v:?}");
    }

    #[test]
    fn program_order_is_causal() {
        // Two writes by one process must apply in order everywhere, even
        // without reads.
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_write(SiteId(0), w(0, 2), VarId(1));
        h.record_apply(SiteId(1), w(0, 2));
        h.record_apply(SiteId(1), w(0, 1));
        let v = check(&h);
        assert!(v.fifo + v.delivery >= 1, "{v:?}");
    }

    #[test]
    fn transitive_dependency_detected() {
        // w(0,1) →co w(1,1) via read; s2 applies only those two, inverted,
        // but also w(1,1) arrived through a third write's chain — keep it
        // minimal: inversion across a 2-hop chain.
        let mut h = History::new(4);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_read(SiteId(1), VarId(0), Some(w(0, 1)), SiteId(1));
        h.record_write(SiteId(1), w(1, 1), VarId(1));
        h.record_read(SiteId(2), VarId(1), Some(w(1, 1)), SiteId(2));
        h.record_write(SiteId(2), w(2, 1), VarId(2));
        // Site 3 applies w(2,1) before w(0,1): transitive violation.
        h.record_apply(SiteId(3), w(2, 1));
        h.record_apply(SiteId(3), w(0, 1));
        // (Other sites' applies omitted; the checker only needs s3's.)
        let v = check(&h);
        assert_eq!(v.delivery, 1, "{v:?}");
    }

    #[test]
    fn stale_read_detected_but_tolerated_by_protocol_clean() {
        // s1 reads w(0,2)'s value of x, then reads x again and sees the
        // older w(0,1): stale.
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_write(SiteId(0), w(0, 2), VarId(0));
        h.record_read(SiteId(1), VarId(0), Some(w(0, 2)), SiteId(0));
        h.record_read(SiteId(1), VarId(0), Some(w(0, 1)), SiteId(0));
        h.record_apply(SiteId(0), w(0, 1));
        h.record_apply(SiteId(0), w(0, 2));
        let v = check(&h);
        assert_eq!(v.stale_reads, 1, "{v:?}");
        assert!(v.protocol_clean());
        assert!(!v.strictly_clean());
    }

    #[test]
    fn bottom_read_with_known_write_in_past_is_stale() {
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        // Same process reads its own variable as ⊥ afterwards.
        h.record_read(SiteId(0), VarId(0), None, SiteId(0));
        h.record_apply(SiteId(0), w(0, 1));
        let v = check(&h);
        assert_eq!(v.stale_reads, 1, "{v:?}");
    }

    #[test]
    fn bottom_read_before_any_write_is_fine() {
        let mut h = History::new(2);
        h.record_read(SiteId(1), VarId(0), None, SiteId(1));
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_apply(SiteId(0), w(0, 1));
        h.record_apply(SiteId(1), w(0, 1));
        let v = check(&h);
        assert!(v.strictly_clean(), "{v:?}");
    }

    #[test]
    fn read_from_wrong_variable_flagged() {
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_read(SiteId(1), VarId(5), Some(w(0, 1)), SiteId(1));
        let v = check(&h);
        assert_eq!(v.reads_from, 1, "{v:?}");
    }

    #[test]
    fn unknown_write_flagged() {
        let mut h = History::new(2);
        h.record_read(SiteId(1), VarId(0), Some(w(0, 9)), SiteId(1));
        let v = check(&h);
        assert_eq!(v.reads_from, 1, "{v:?}");
    }

    #[test]
    fn out_of_sequence_write_clock_flagged() {
        let mut h = History::new(1);
        h.record_write(SiteId(0), w(0, 2), VarId(0)); // first write, clock 2
        let v = check(&h);
        assert!(v.unresolved >= 1, "{v:?}");
    }

    #[test]
    fn activity_after_departure_seal_is_out_of_view() {
        let mut h = History::new(2);
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        h.record_apply(SiteId(0), w(0, 1));
        h.record_apply(SiteId(1), w(0, 1));
        h.seal_site(SiteId(0));
        let v = check(&h);
        assert_eq!(v.out_of_view, 0, "{v:?}");
        assert!(v.protocol_clean());
        // The departed site writes and applies again: both flagged.
        h.record_write(SiteId(0), w(0, 2), VarId(0));
        h.record_apply(SiteId(0), w(0, 2));
        let v = check(&h);
        assert_eq!(v.out_of_view, 2, "{v:?}");
        assert!(!v.protocol_clean());
        // Sealing is idempotent: a second seal keeps the first watermark.
        h.seal_site(SiteId(0));
        assert_eq!(check(&h).out_of_view, 2);
    }

    #[test]
    fn examples_are_capped() {
        let mut h = History::new(1);
        // 20 bad ⊥ reads after a write.
        h.record_write(SiteId(0), w(0, 1), VarId(0));
        for _ in 0..20 {
            h.record_read(SiteId(0), VarId(0), None, SiteId(0));
        }
        h.record_apply(SiteId(0), w(0, 1));
        let v = check(&h);
        assert_eq!(v.stale_reads, 20);
        assert!(v.examples.len() <= 10);
    }
}

#[cfg(test)]
mod own_write_race_tests {
    use super::*;
    use causal_types::SiteId;

    fn w(site: usize, clock: u64) -> WriteId {
        WriteId::new(SiteId::from(site), clock)
    }

    #[test]
    fn own_write_race_classified_separately() {
        // s1 writes to var 0. s0 remotely reads it (via some replica),
        // then writes var 1 — applied at s0 immediately. s1's write reaches
        // s0 only later: s0's apply order inverts a real →co edge, but the
        // later write is s0's own → own_write_races, not delivery.
        let mut h = History::new(3);
        h.record_write(SiteId(1), w(1, 1), causal_types::VarId(0));
        h.record_read(SiteId(0), causal_types::VarId(0), Some(w(1, 1)), SiteId(2));
        h.record_write(SiteId(0), w(0, 1), causal_types::VarId(1));
        // s0 applies its own write first, then the remote one.
        h.record_apply(SiteId(0), w(0, 1));
        h.record_apply(SiteId(0), w(1, 1));
        // Other sites apply in causal order.
        h.record_apply(SiteId(1), w(1, 1));
        h.record_apply(SiteId(1), w(0, 1));
        let v = check(&h);
        assert_eq!(v.own_write_races, 1, "{v:?}");
        assert_eq!(v.delivery, 0);
        assert!(v.protocol_clean());
        assert!(!v.strictly_clean());
    }

    #[test]
    fn received_write_inversion_is_still_a_delivery_bug() {
        // Same shape, but the inverting site is a third party applying two
        // *received* writes out of order: that is a genuine protocol bug.
        let mut h = History::new(3);
        h.record_write(SiteId(1), w(1, 1), causal_types::VarId(0));
        h.record_read(SiteId(0), causal_types::VarId(0), Some(w(1, 1)), SiteId(0));
        h.record_write(SiteId(0), w(0, 1), causal_types::VarId(1));
        h.record_apply(SiteId(2), w(0, 1));
        h.record_apply(SiteId(2), w(1, 1));
        let v = check(&h);
        assert_eq!(v.delivery, 1, "{v:?}");
        assert_eq!(v.own_write_races, 0);
    }
}
