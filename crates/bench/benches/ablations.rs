//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Criterion reports run time; the byte effects of each ablation are
//! printed once per bench (via `eprintln!`) so `cargo bench ablation`
//! doubles as a quantitative ablation report.

use causal_clocks::PruneConfig;
use causal_memory::{Placement, PlacementKind};
use causal_proto::ProtocolKind;
use causal_simnet::{run, SimConfig};
use causal_types::SizeModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn cfg_base(n: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, n, 0.5, 11);
    cfg.workload.events_per_process = 60;
    cfg
}

/// Condition-2 pruning on/off: the mechanism the paper credits for
/// Opt-Track's near-linear metadata growth.
fn ablation_purge(c: &mut Criterion) {
    let n = 10;
    let mut on = cfg_base(n);
    on.prune = PruneConfig::default();
    let mut off = cfg_base(n);
    off.prune = PruneConfig {
        condition2: false,
        ..PruneConfig::default()
    };
    let bytes_on = run(&on).metrics.measured.total_bytes();
    let bytes_off = run(&off).metrics.measured.total_bytes();
    eprintln!(
        "[ablation_purge] n={n}: condition2 ON = {bytes_on} B, OFF = {bytes_off} B \
         ({:.2}× inflation without PURGE)",
        bytes_off as f64 / bytes_on as f64
    );
    assert!(bytes_off > bytes_on, "condition 2 must reduce metadata");

    let mut g = c.benchmark_group("ablation_purge");
    g.sample_size(10);
    for (label, cfg) in [("condition2_on", on), ("condition2_off", off)] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(run(&cfg).metrics.measured.total_bytes()))
        });
    }
    g.finish();
}

/// Replica placement strategies (the paper assumes even placement).
fn ablation_placement(c: &mut Criterion) {
    let n = 12;
    let p = 4;
    let mut g = c.benchmark_group("ablation_placement");
    g.sample_size(10);
    for (label, kind) in [
        ("even", PlacementKind::Even),
        ("hashed", PlacementKind::Hashed { seed: 3 }),
        ("clustered", PlacementKind::Clustered),
    ] {
        let mut cfg = cfg_base(n);
        cfg.placement = Arc::new(Placement::new(kind, n, p).unwrap());
        let r = run(&cfg);
        eprintln!(
            "[ablation_placement] {label}: {} msgs, {} B metadata, {} remote reads",
            r.metrics.measured.total_count(),
            r.metrics.measured.total_bytes(),
            r.metrics.remote_reads,
        );
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg).metrics.measured.total_count()))
        });
    }
    g.finish();
}

/// Size-model calibration: the paper's conclusions must not depend on the
/// Java-like byte accounting.
fn ablation_sizemodel(c: &mut Criterion) {
    let n = 12;
    for model in [SizeModel::java_like(), SizeModel::wire()] {
        let mut ot = cfg_base(n);
        ot.size_model = model;
        let mut ft = SimConfig::paper_partial(ProtocolKind::FullTrack, n, 0.5, 11);
        ft.workload.events_per_process = 60;
        ft.size_model = model;
        let ratio = run(&ot).metrics.measured.total_bytes() as f64
            / run(&ft).metrics.measured.total_bytes() as f64;
        eprintln!("[ablation_sizemodel] {model:?}: Opt-Track/Full-Track total ratio = {ratio:.3}");
        assert!(ratio < 1.0, "Opt-Track must win under every calibration");
    }
    let mut g = c.benchmark_group("ablation_sizemodel");
    g.sample_size(10);
    g.bench_function("java_like_accounting", |b| {
        let cfg = cfg_base(n);
        b.iter(|| black_box(run(&cfg).metrics.measured.total_bytes()))
    });
    g.finish();
}

/// Uniform vs Zipf variable selection (extension; paper uses uniform).
fn ablation_zipf(c: &mut Criterion) {
    let n = 12;
    let mut uniform = cfg_base(n);
    uniform.workload.var_dist = causal_workload::VarDistribution::Uniform;
    let mut zipf = cfg_base(n);
    zipf.workload.var_dist = causal_workload::VarDistribution::Zipf { theta: 0.99 };
    let bu = run(&uniform).metrics.measured.total_bytes();
    let bz = run(&zipf).metrics.measured.total_bytes();
    eprintln!(
        "[ablation_zipf] uniform = {bu} B, zipf(0.99) = {bz} B ({:.2}× hot-key effect)",
        bz as f64 / bu as f64
    );
    let mut g = c.benchmark_group("ablation_zipf");
    g.sample_size(10);
    for (label, cfg) in [("uniform", uniform), ("zipf", zipf)] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(run(&cfg).metrics.measured.total_bytes()))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_purge,
    ablation_placement,
    ablation_sizemodel,
    ablation_zipf,
);
criterion_main!(ablations);
