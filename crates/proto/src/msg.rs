//! Protocol messages and their meta-data size accounting.
//!
//! Table I of the paper defines the message structures:
//!
//! | | Full-Track | Opt-Track |
//! |---|---|---|
//! | SM (multicast)     | `x_h, v, Write`            | `x_h, v, Site_id, clock, L_w` |
//! | FM (fetch)         | `x_h`                      | `x_h` |
//! | RM (remote return) | `v, LastWriteOn⟨h⟩`        | `v, LastWriteOn⟨h⟩` |
//!
//! Full-replication protocols only use SM: `m(x_h, v, Site_id, clock, LOG)`
//! for Opt-Track-CRP and `m(x_h, v, Write)` (a size-`n` vector) for optP.

use causal_clocks::{
    CrpDelta, CrpLog, Log, LogDelta, MatrixClock, MatrixDelta, VectorClock, VectorDelta,
};
use causal_types::{MetaSized, MsgKind, SizeModel, VarId, VersionedValue};
use std::sync::Arc;

/// The causality meta-data piggybacked on an SM (update multicast).
///
/// The piggybacked structures are behind `Arc`: a multicast write produces
/// one SM per destination replica carrying the *same immutable* snapshot, so
/// the fan-out shares one allocation instead of deep-cloning an `O(n²)`
/// matrix (or an `O(n)` log) per destination. Receivers that need a private
/// mutable copy (Opt-Track's `assoc` construction) unwrap-or-clone at apply
/// time.
#[derive(Clone, PartialEq, Debug)]
pub enum SmMeta {
    /// Full-Track: the writer's entire `n×n` Write matrix.
    FullTrack {
        /// Matrix snapshot taken *after* incrementing the writer's own row
        /// for this write's destinations.
        write: Arc<MatrixClock>,
    },
    /// Opt-Track: the writer's id and local write counter, plus the local
    /// log snapshot taken *before* the write pruned it.
    OptTrack {
        /// The writer's write counter for this update (1-based).
        clock: u64,
        /// Piggybacked causal-past records (`L_w`).
        log: Arc<Log>,
    },
    /// Opt-Track-CRP: as Opt-Track but with 2-tuple entries.
    Crp {
        /// The writer's write counter for this update (1-based).
        clock: u64,
        /// Piggybacked dependency tuples.
        log: Arc<CrpLog>,
    },
    /// optP: the writer's size-`n` Write vector, incremented for this write.
    OptP {
        /// Vector snapshot including this write.
        write: Arc<VectorClock>,
    },
}

impl SmMeta {
    /// Number of records in the piggybacked causality structure: matrix
    /// cells for Full-Track, log entries for Opt-Track / CRP, vector
    /// components for optP. Used to analyze the paper's `d` parameter and
    /// the amortized log size.
    pub fn entry_count(&self) -> usize {
        match self {
            SmMeta::FullTrack { write } => write.n() * write.n(),
            SmMeta::OptTrack { log, .. } => log.len(),
            SmMeta::Crp { log, .. } => log.len(),
            SmMeta::OptP { write } => write.len(),
        }
    }
}

impl MetaSized for SmMeta {
    fn meta_size(&self, model: &SizeModel) -> u64 {
        match self {
            // `x_h` and `v` are part of the SM base in the SizeModel.
            SmMeta::FullTrack { write } => write.meta_size(model),
            // `Site_id` and `clock` are two scalars on top of the log.
            SmMeta::OptTrack { log, .. } => model.scalars(2) + log.meta_size(model),
            SmMeta::Crp { log, .. } => model.scalars(2) + log.meta_size(model),
            SmMeta::OptP { write } => write.meta_size(model),
        }
    }
}

/// Difference between two [`SmMeta`] piggybacks of the same variant (i.e.
/// two snapshots taken by the same sender under one protocol).
///
/// Used by the wire codec to encode the 2nd..Nth update of an [`SmBatch`]
/// relative to its predecessor — exact reconstruction, so batched and
/// unbatched decoding yield byte-identical protocol inputs. The per-SM
/// `clock` scalars stay outside the delta (they are per-update control
/// fields, not part of the shared structure).
#[derive(Clone, PartialEq, Debug)]
pub enum SmMetaDelta {
    /// Full-Track / HB-Track: changed matrix cells.
    FullTrack(MatrixDelta),
    /// Opt-Track: the update's own clock plus the log difference.
    OptTrack {
        /// The writer's write counter for this update.
        clock: u64,
        /// Exact log difference.
        delta: LogDelta,
    },
    /// Opt-Track-CRP: the update's own clock plus the 2-tuple differences.
    Crp {
        /// The writer's write counter for this update.
        clock: u64,
        /// Exact tuple replacements/removals.
        delta: CrpDelta,
    },
    /// optP: changed vector components.
    OptP(VectorDelta),
}

impl SmMetaDelta {
    /// Delta turning `prev` into `next`; `None` when the variants differ
    /// (mixed-protocol metas never share a batch, but the codec must not
    /// assume it).
    pub fn between(prev: &SmMeta, next: &SmMeta) -> Option<SmMetaDelta> {
        match (prev, next) {
            (SmMeta::FullTrack { write: a }, SmMeta::FullTrack { write: b }) => {
                Some(SmMetaDelta::FullTrack(MatrixDelta::between(a, b)))
            }
            (SmMeta::OptTrack { log: a, .. }, SmMeta::OptTrack { clock, log: b }) => {
                Some(SmMetaDelta::OptTrack {
                    clock: *clock,
                    delta: LogDelta::between(a, b),
                })
            }
            (SmMeta::Crp { log: a, .. }, SmMeta::Crp { clock, log: b }) => Some(SmMetaDelta::Crp {
                clock: *clock,
                delta: CrpDelta::between(a, b),
            }),
            (SmMeta::OptP { write: a }, SmMeta::OptP { write: b }) => {
                Some(SmMetaDelta::OptP(VectorDelta::between(a, b)))
            }
            _ => None,
        }
    }

    /// Reconstruct the successor meta from its predecessor; `None` when the
    /// variants differ (a corrupt frame, surfaced as a decode error).
    pub fn apply_to(&self, prev: &SmMeta) -> Option<SmMeta> {
        match (self, prev) {
            (SmMetaDelta::FullTrack(d), SmMeta::FullTrack { write }) => Some(SmMeta::FullTrack {
                write: Arc::new(d.apply_to(write)),
            }),
            (SmMetaDelta::OptTrack { clock, delta }, SmMeta::OptTrack { log, .. }) => {
                Some(SmMeta::OptTrack {
                    clock: *clock,
                    log: Arc::new(delta.apply_to(log)),
                })
            }
            (SmMetaDelta::Crp { clock, delta }, SmMeta::Crp { log, .. }) => Some(SmMeta::Crp {
                clock: *clock,
                log: Arc::new(delta.apply_to(log)),
            }),
            (SmMetaDelta::OptP(d), SmMeta::OptP { write }) => Some(SmMeta::OptP {
                write: Arc::new(d.apply_to(write)),
            }),
            _ => None,
        }
    }
}

impl MetaSized for SmMetaDelta {
    fn meta_size(&self, model: &SizeModel) -> u64 {
        match self {
            SmMetaDelta::FullTrack(d) => d.meta_size(model),
            SmMetaDelta::OptTrack { delta, .. } => model.scalars(1) + delta.meta_size(model),
            SmMetaDelta::Crp { delta, .. } => model.scalars(1) + delta.meta_size(model),
            SmMetaDelta::OptP(d) => d.meta_size(model),
        }
    }
}

/// An update multicast message (one copy per destination replica).
#[derive(Clone, PartialEq, Debug)]
pub struct Sm {
    /// The written variable.
    pub var: VarId,
    /// The written value (tagged with the producing [`causal_types::WriteId`]).
    pub value: VersionedValue,
    /// Piggybacked causality meta-data.
    pub meta: SmMeta,
}

/// One update inside an [`SmBatch`], with the bookkeeping the simulator
/// needs to unbatch it exactly as if it had been sent alone.
#[derive(Clone, PartialEq, Debug)]
pub struct BatchedSm {
    /// The update, with its *exact* per-send piggyback snapshot — unbatching
    /// hands each SM to the protocol byte-identically to the unbatched path,
    /// so per-SM causal semantics (and the checker) are untouched.
    pub sm: Sm,
    /// Whether the update was issued inside the measured (post-warmup)
    /// window.
    pub measured: bool,
}

/// A per-destination batch of SM messages from one sender.
///
/// ROADMAP item #2: consecutive updates from one site to one destination
/// share most of their causal context, so a batch frame amortizes the
/// piggyback across its updates. The in-memory representation keeps every
/// update's exact meta (see [`BatchedSm::sm`]); the *byte accounting*
/// ([`SmBatch::meta_size`]) models the merged-piggyback wire format: one
/// structure — the final update's, which supersedes its same-sender
/// predecessors (matrix/vector snapshots are monotone under `merge_max`;
/// a KS/CRP log's dropped entries are exactly the ones proven redundant) —
/// plus a small control header per update. `docs/PROTOCOLS.md` maps this
/// format onto each protocol's delivery predicate.
#[derive(Clone, PartialEq, Debug)]
pub struct SmBatch {
    /// Updates in send order (oldest first). Never empty, same sender,
    /// same destination.
    pub sms: Vec<BatchedSm>,
}

impl SmBatch {
    /// Number of batched updates.
    pub fn len(&self) -> usize {
        self.sms.len()
    }

    /// `true` when the batch holds no updates (never shipped; exists so
    /// `len` passes clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.sms.is_empty()
    }

    /// Per-update control scalars beyond the shared piggyback: the variable
    /// id, the writer's clock, and — for the log protocols, whose delivery
    /// predicate consumes a per-update send counter — the meta clock. The
    /// writer's site id is once per frame (same sender), charged in
    /// `batch_base`.
    fn control_scalars(sm: &Sm) -> usize {
        match sm.meta {
            SmMeta::OptTrack { .. } | SmMeta::Crp { .. } => 3,
            SmMeta::FullTrack { .. } | SmMeta::OptP { .. } => 2,
        }
    }

    /// Meta-data bytes of the batch frame under the merged-piggyback model:
    /// `batch_base` + the final update's full piggyback + per update
    /// `batch_sm_base` plus its control scalars. The value payloads are not
    /// counted, as everywhere else.
    pub fn batch_meta_size(&self, model: &SizeModel) -> u64 {
        let merged = self.sms.last().map_or(0, |b| b.sm.meta.meta_size(model));
        let per_sm: u64 = self
            .sms
            .iter()
            .map(|b| model.batch_sm_base as u64 + model.scalars(Self::control_scalars(&b.sm)))
            .sum();
        model.batch_base as u64 + merged + per_sm
    }

    /// What the same updates would have cost as individual SM messages
    /// (used for the `batch_bytes_saved` counter).
    pub fn unbatched_size(&self, model: &SizeModel) -> u64 {
        self.sms
            .iter()
            .map(|b| model.base(MsgKind::Sm) + b.sm.meta.meta_size(model))
            .sum()
    }
}

/// A remote fetch request. Carries no causal meta-data (Table I): the
/// serving replica answers from its current state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fm {
    /// The requested variable.
    pub var: VarId,
}

/// The `LastWriteOn⟨h⟩` meta-data returned with a remote read.
///
/// Shares the server's stored snapshot via `Arc` — serving a fetch does not
/// deep-clone the stashed matrix/log.
#[derive(Clone, PartialEq, Debug)]
pub enum RmMeta {
    /// Full-Track: the matrix associated with the last write applied to the
    /// variable, or `None` if the variable is still `⊥` at the server.
    FullTrack(Option<Arc<MatrixClock>>),
    /// Opt-Track: the log associated with the last write applied to the
    /// variable, or `None` if the variable is still `⊥` at the server.
    OptTrack(Option<Arc<Log>>),
}

impl MetaSized for RmMeta {
    fn meta_size(&self, model: &SizeModel) -> u64 {
        match self {
            RmMeta::FullTrack(m) => m.meta_size(model),
            RmMeta::OptTrack(l) => l.meta_size(model),
        }
    }
}

/// A remote-return message answering an [`Fm`].
#[derive(Clone, PartialEq, Debug)]
pub struct Rm {
    /// The requested variable (echoed for correlation).
    pub var: VarId,
    /// The server's current value, `None` for `⊥`.
    pub value: Option<VersionedValue>,
    /// The server's `LastWriteOn⟨h⟩`.
    pub meta: RmMeta,
}

/// Any protocol message.
#[derive(Clone, PartialEq, Debug)]
pub enum Msg {
    /// Update multicast (send event).
    Sm(Sm),
    /// Remote fetch (fetch event).
    Fm(Fm),
    /// Remote return (reply to a fetch).
    Rm(Rm),
    /// A per-destination batch of updates (`Arc`'d: the enum stays small
    /// and cloning a batch for retransmission is a refcount bump).
    Batch(Arc<SmBatch>),
}

impl Msg {
    /// This message's class. A batch is SM traffic — it carries updates and
    /// is accounted against the SM byte counters.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::Sm(_) | Msg::Batch(_) => MsgKind::Sm,
            Msg::Fm(_) => MsgKind::Fm,
            Msg::Rm(_) => MsgKind::Rm,
        }
    }
}

impl MetaSized for Msg {
    /// Full meta-data footprint: per-kind base plus piggybacked structures.
    /// The value payload is intentionally *not* included (the paper measures
    /// control overhead only).
    fn meta_size(&self, model: &SizeModel) -> u64 {
        match self {
            Msg::Sm(sm) => model.base(MsgKind::Sm) + sm.meta.meta_size(model),
            Msg::Fm(_) => model.base(MsgKind::Fm),
            Msg::Rm(rm) => model.base(MsgKind::Rm) + rm.meta.meta_size(model),
            // One SM's worth of message base for the frame, then the
            // merged-piggyback batch accounting.
            Msg::Batch(b) => model.base(MsgKind::Sm) + b.batch_meta_size(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_types::{SiteId, WriteId};

    fn value() -> VersionedValue {
        VersionedValue::new(WriteId::new(SiteId(0), 1), 42)
    }

    #[test]
    fn optp_sm_size_matches_table_iii() {
        let model = SizeModel::java_like();
        for n in [5usize, 10, 20, 30, 35, 40] {
            let m = Msg::Sm(Sm {
                var: VarId(0),
                value: value(),
                meta: SmMeta::OptP {
                    write: Arc::new(VectorClock::new(n)),
                },
            });
            assert_eq!(m.meta_size(&model), 209 + 10 * n as u64);
        }
    }

    #[test]
    fn full_track_sm_is_quadratic() {
        let model = SizeModel::java_like();
        let m = Msg::Sm(Sm {
            var: VarId(0),
            value: value(),
            meta: SmMeta::FullTrack {
                write: Arc::new(MatrixClock::new(40)),
            },
        });
        assert_eq!(m.meta_size(&model), 209 + 10 * 1600);
    }

    #[test]
    fn fm_is_constant_base_only() {
        let model = SizeModel::java_like();
        let m = Msg::Fm(Fm { var: VarId(7) });
        assert_eq!(m.meta_size(&model), model.base(MsgKind::Fm));
    }

    #[test]
    fn rm_with_bottom_value_has_base_size_only() {
        let model = SizeModel::java_like();
        let m = Msg::Rm(Rm {
            var: VarId(0),
            value: None,
            meta: RmMeta::OptTrack(None),
        });
        assert_eq!(m.meta_size(&model), model.base(MsgKind::Rm));
    }

    #[test]
    fn crp_sm_counts_sender_tuple_and_log() {
        let model = SizeModel::java_like();
        let mut log = CrpLog::new();
        log.observe(WriteId::new(SiteId(2), 9));
        let m = Msg::Sm(Sm {
            var: VarId(0),
            value: value(),
            meta: SmMeta::Crp {
                clock: 1,
                log: Arc::new(log),
            },
        });
        // base 209 + (site id + clock) 20 + one 2-tuple 20.
        assert_eq!(m.meta_size(&model), 209 + 20 + 20);
    }

    fn batch_of(metas: Vec<SmMeta>) -> SmBatch {
        SmBatch {
            sms: metas
                .into_iter()
                .enumerate()
                .map(|(i, meta)| BatchedSm {
                    sm: Sm {
                        var: VarId(i as u32),
                        value: VersionedValue::new(WriteId::new(SiteId(0), i as u64 + 1), 7),
                        meta,
                    },
                    measured: true,
                })
                .collect(),
        }
    }

    #[test]
    fn batch_amortizes_the_piggyback() {
        // k matrix-carrying SMs in one frame: one matrix + k small headers,
        // against k full matrices unbatched.
        let model = SizeModel::batched();
        let k = 16;
        let batch = batch_of(
            (0..k)
                .map(|_| SmMeta::FullTrack {
                    write: Arc::new(MatrixClock::new(20)),
                })
                .collect(),
        );
        let batched = Msg::Batch(Arc::new(batch.clone())).meta_size(&model);
        let unbatched = batch.unbatched_size(&model);
        assert!(
            batched * 10 <= unbatched,
            "expected ≥10× amortization at k={k}: {batched} vs {unbatched}"
        );
        // Exact formula: sm_base + batch_base + one matrix + k·(per-SM).
        assert_eq!(batched, 24 + 8 + 400 * 4 + k as u64 * (4 + 2 * 4),);
    }

    #[test]
    fn singleton_batch_costs_more_than_a_plain_sm() {
        // The flush path must degrade a one-element lane to a plain SM;
        // this pins the reason (the batch framing is pure overhead at k=1).
        let model = SizeModel::batched();
        let meta = SmMeta::OptP {
            write: Arc::new(VectorClock::new(10)),
        };
        let single = batch_of(vec![meta.clone()]);
        let plain = Msg::Sm(single.sms[0].sm.clone()).meta_size(&model);
        assert!(Msg::Batch(Arc::new(single)).meta_size(&model) > plain);
    }

    #[test]
    fn sm_meta_delta_roundtrips_per_variant() {
        let mut m1 = MatrixClock::new(4);
        m1.set(SiteId(0), SiteId(1), 2);
        let mut m2 = m1.clone();
        m2.increment(SiteId(0), SiteId(1));
        let prev = SmMeta::FullTrack {
            write: Arc::new(m1),
        };
        let next = SmMeta::FullTrack {
            write: Arc::new(m2),
        };
        let d = SmMetaDelta::between(&prev, &next).unwrap();
        assert_eq!(d.apply_to(&prev), Some(next));

        // Variant mismatch: no delta, and apply refuses.
        let optp = SmMeta::OptP {
            write: Arc::new(VectorClock::new(4)),
        };
        assert!(SmMetaDelta::between(&prev, &optp).is_none());
        assert_eq!(d.apply_to(&optp), None);
    }

    #[test]
    fn kind_taxonomy() {
        assert_eq!(Msg::Fm(Fm { var: VarId(0) }).kind(), MsgKind::Fm);
        let rm = Msg::Rm(Rm {
            var: VarId(0),
            value: None,
            meta: RmMeta::FullTrack(None),
        });
        assert_eq!(rm.kind(), MsgKind::Rm);
    }
}
