//! Flat binary wire codec for protocol messages.
//!
//! The TCP transport in `causal-runtime` frames each [`Msg`] with this
//! codec (length-prefixed on the socket); the simnet transport sizes its
//! frames with the same layout. The format is a tag-prefixed flat encoding
//! with LEB128 varint scalars — no self-description, no versioning —
//! because both ends of a run are always the same build, as in the paper's
//! testbed.
//!
//! ## Tigerstyle: there IS a limit
//!
//! Encoding goes through a [`WireBuf`]: a reusable scratch buffer with a
//! hard [`MAX_FRAME`] cap. The hot path ([`encode_with`]) borrows a
//! thread-local scratch, so the steady state allocates nothing — the buffer
//! is cleared, refilled and handed to the caller as a borrowed `&[u8]`.
//! Exceeding the cap is a bug in the sender (no legal message comes close)
//! and fails loudly at the assert rather than growing without bound.
//!
//! Decoding is a zero-copy walk: a [`Frame`] borrows the input buffer and
//! [`Reader`] advances through it segment by segment, only materialising
//! the clock structures themselves. Decoding is **total**: malformed input
//! yields [`WireError`], never a panic or an attacker-sized allocation, so
//! a corrupted frame cannot take down a site. Batched updates
//! ([`SmBatch`]) encode the 2nd..Nth piggyback as an exact delta against
//! its predecessor ([`SmMetaDelta`]) and are reconstructed byte-identically
//! on decode.

use crate::msg::{BatchedSm, Fm, Msg, Rm, RmMeta, Sm, SmBatch, SmMeta, SmMetaDelta};
use causal_clocks::{
    CrpDelta, CrpLog, DestSet, Log, LogDelta, LogEntry, MatrixClock, MatrixDelta, VectorClock,
    VectorDelta,
};
use causal_types::{MsgKind, SiteId, VarId, VersionedValue, WriteId};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// Hard upper bound on an encoded frame, in bytes.
///
/// The worst legal case — a full batch of `MAX_SITES`-wide matrix
/// piggybacks that all hit the dense fallback — stays well under 1 MiB;
/// anything larger is a runaway sender.
pub const MAX_FRAME: usize = 1 << 20;

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Input ended before the structure was complete (or a length field
    /// claimed more elements than the input could possibly hold).
    Truncated,
    /// An enum tag or flag byte was out of range.
    BadTag(u8),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// WireBuf: bounded, reusable encode scratch
// ---------------------------------------------------------------------

/// A reusable encode buffer with a hard [`MAX_FRAME`] size limit.
///
/// `clear()` keeps the allocation, so a long-lived `WireBuf` (such as the
/// thread-local scratch behind [`encode_with`]) reaches a steady state
/// where encoding allocates nothing at all.
#[derive(Default)]
pub struct WireBuf {
    buf: Vec<u8>,
}

impl WireBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        WireBuf {
            buf: Vec::with_capacity(256),
        }
    }

    /// Drop the contents, keep the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    fn push(&mut self, b: u8) {
        assert!(
            self.buf.len() < MAX_FRAME,
            "wire frame exceeds MAX_FRAME ({MAX_FRAME} bytes): runaway sender"
        );
        self.buf.push(b);
    }

    /// LEB128 varint.
    #[inline]
    fn put_varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.push(b);
                return;
            }
            self.push(b | 0x80);
        }
    }

    #[inline]
    fn put_usize(&mut self, v: usize) {
        self.put_varint(v as u64);
    }

    #[inline]
    fn put_site(&mut self, s: SiteId) {
        self.put_varint(s.0 as u64);
    }
}

thread_local! {
    static SCRATCH: RefCell<WireBuf> = RefCell::new(WireBuf::new());
}

/// Encode `msg` into the thread-local scratch buffer and hand the encoded
/// bytes to `f` — the zero-allocation hot path (the borrow never escapes,
/// so the scratch can be reused by the very next call).
pub fn encode_with<R>(msg: &Msg, f: impl FnOnce(&[u8]) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            encode_into(msg, &mut buf);
            f(buf.as_slice())
        }
        // Re-entrant use (encode_with inside `f`): fall back to a private
        // buffer rather than poisoning the scratch.
        Err(_) => {
            let mut buf = WireBuf::new();
            encode_into(msg, &mut buf);
            f(buf.as_slice())
        }
    })
}

/// Encode a message to an owned byte vector (compatibility surface; sized
/// exactly, built from the thread-local scratch).
pub fn encode(msg: &Msg) -> Vec<u8> {
    encode_with(msg, |b| b.to_vec())
}

/// Encode a *routed* frame — a `[src][dst]` LEB128 routing header followed
/// by the ordinary message body — into the thread-local scratch and hand
/// the bytes to `f`. This is the multiplexed fabric's frame format: one
/// connection carries every site pair between two workers, and the
/// receiver routes on the header alone (see [`decode_routed`]).
pub fn encode_routed_with<R>(src: SiteId, dst: SiteId, msg: &Msg, f: impl FnOnce(&[u8]) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            encode_routed_into(src, dst, msg, &mut buf);
            f(buf.as_slice())
        }
        Err(_) => {
            let mut buf = WireBuf::new();
            encode_routed_into(src, dst, msg, &mut buf);
            f(buf.as_slice())
        }
    })
}

/// Encode a routed frame into `out`, replacing its previous contents.
pub fn encode_routed_into(src: SiteId, dst: SiteId, msg: &Msg, out: &mut WireBuf) {
    out.clear();
    out.put_site(src);
    out.put_site(dst);
    put_msg(out, msg);
}

/// Encode `msg` into `out`, replacing its previous contents.
pub fn encode_into(msg: &Msg, out: &mut WireBuf) {
    out.clear();
    put_msg(out, msg);
}

/// Append the tag byte and message body to `out` (no clear — routed frames
/// prefix their header first).
fn put_msg(out: &mut WireBuf, msg: &Msg) {
    match msg {
        Msg::Sm(sm) => {
            out.push(0);
            put_sm_body(out, sm);
        }
        Msg::Fm(fm) => {
            out.push(1);
            out.put_varint(fm.var.0 as u64);
        }
        Msg::Rm(rm) => {
            out.push(2);
            out.put_varint(rm.var.0 as u64);
            match &rm.value {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    put_value(out, v);
                }
            }
            put_rm_meta(out, &rm.meta);
        }
        Msg::Batch(batch) => {
            out.push(3);
            put_batch(out, batch);
        }
    }
}

/// Decode a message from bytes; the whole input must be consumed.
pub fn decode(buf: &[u8]) -> Result<Msg, WireError> {
    Frame::new(buf)?.decode()
}

/// A decoded routed frame: the routing header plus the message.
#[derive(Debug, PartialEq)]
pub struct Routed {
    /// The sending site (the `from` the receiving node sees).
    pub src: SiteId,
    /// The destination site whose mailbox the frame must reach. The
    /// receiver trusts this header over the connection's identity, so a
    /// frame arriving on the "wrong" connection is rerouted, not dropped.
    pub dst: SiteId,
    /// The message itself.
    pub msg: Msg,
}

/// Decode a routed frame (`[src][dst][body]`); the whole input must be
/// consumed and both sites must be in the legal range.
pub fn decode_routed(buf: &[u8]) -> Result<Routed, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let src = r.site()?;
    let dst = r.site()?;
    let msg = decode(&buf[r.pos..])?;
    Ok(Routed { src, dst, msg })
}

// ---------------------------------------------------------------------
// Zero-copy frame view
// ---------------------------------------------------------------------

/// A zero-copy view over one encoded message.
///
/// Construction validates the tag byte only, so transports can classify a
/// frame (`kind()`) without materialising the piggybacked structures;
/// [`Frame::decode`] walks the borrowed bytes and builds the owned [`Msg`].
#[derive(Clone, Copy)]
pub struct Frame<'a> {
    buf: &'a [u8],
    tag: u8,
}

impl<'a> Frame<'a> {
    /// Wrap `buf`, validating the leading tag byte.
    pub fn new(buf: &'a [u8]) -> Result<Frame<'a>, WireError> {
        match buf.first() {
            None => Err(WireError::Truncated),
            Some(&tag @ 0..=3) => Ok(Frame { buf, tag }),
            Some(&t) => Err(WireError::BadTag(t)),
        }
    }

    /// The message class, read from the tag without decoding the body.
    pub fn kind(&self) -> MsgKind {
        match self.tag {
            0 | 3 => MsgKind::Sm,
            1 => MsgKind::Fm,
            _ => MsgKind::Rm,
        }
    }

    /// Decode the full message; the whole frame must be consumed.
    pub fn decode(&self) -> Result<Msg, WireError> {
        let mut r = Reader {
            buf: self.buf,
            pos: 1,
        };
        let msg = match self.tag {
            0 => Msg::Sm(r.sm_body()?),
            1 => Msg::Fm(Fm { var: r.var()? }),
            2 => {
                let var = r.var()?;
                let value = match r.u8()? {
                    0 => None,
                    1 => Some(r.value()?),
                    t => return Err(WireError::BadTag(t)),
                };
                let meta = r.rm_meta()?;
                Msg::Rm(Rm { var, value, meta })
            }
            _ => Msg::Batch(Arc::new(r.batch()?)),
        };
        if r.pos != self.buf.len() {
            return Err(WireError::TrailingBytes(self.buf.len() - r.pos));
        }
        Ok(msg)
    }
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn put_sm_body(out: &mut WireBuf, sm: &Sm) {
    out.put_varint(sm.var.0 as u64);
    put_value(out, &sm.value);
    put_sm_meta(out, &sm.meta);
}

fn put_write_id(out: &mut WireBuf, w: WriteId) {
    out.put_site(w.site);
    out.put_varint(w.clock);
}

fn put_value(out: &mut WireBuf, v: &VersionedValue) {
    put_write_id(out, v.writer);
    out.put_varint(v.data);
    out.put_varint(v.payload_len as u64);
}

fn put_matrix(out: &mut WireBuf, m: &MatrixClock) {
    out.put_usize(m.n());
    for j in SiteId::all(m.n()) {
        for k in SiteId::all(m.n()) {
            out.put_varint(m.get(j, k));
        }
    }
}

fn put_vector(out: &mut WireBuf, v: &VectorClock) {
    out.put_usize(v.len());
    for (_, c) in v.iter() {
        out.put_varint(c);
    }
}

fn put_dests(out: &mut WireBuf, d: &DestSet) {
    out.put_usize(d.len());
    for s in d.iter() {
        out.put_site(s);
    }
}

fn put_log(out: &mut WireBuf, log: &Log) {
    out.put_usize(log.len());
    for e in log.iter() {
        out.put_site(e.origin);
        out.put_varint(e.clock);
        put_dests(out, &e.dests);
    }
}

fn put_crp_log(out: &mut WireBuf, log: &CrpLog) {
    out.put_usize(log.len());
    for w in log.iter() {
        put_write_id(out, *w);
    }
}

fn put_sm_meta(out: &mut WireBuf, meta: &SmMeta) {
    match meta {
        SmMeta::FullTrack { write } => {
            out.push(0);
            put_matrix(out, write);
        }
        SmMeta::OptTrack { clock, log } => {
            out.push(1);
            out.put_varint(*clock);
            put_log(out, log);
        }
        SmMeta::Crp { clock, log } => {
            out.push(2);
            out.put_varint(*clock);
            put_crp_log(out, log);
        }
        SmMeta::OptP { write } => {
            out.push(3);
            put_vector(out, write);
        }
    }
}

fn put_rm_meta(out: &mut WireBuf, meta: &RmMeta) {
    match meta {
        RmMeta::FullTrack(None) => out.push(0),
        RmMeta::FullTrack(Some(m)) => {
            out.push(1);
            put_matrix(out, m);
        }
        RmMeta::OptTrack(None) => out.push(2),
        RmMeta::OptTrack(Some(l)) => {
            out.push(3);
            put_log(out, l);
        }
    }
}

/// Per-batched-SM flag byte: bit 0 = meta is a delta against the previous
/// update's meta, bit 1 = the update was issued in the measured window.
const BATCH_FLAG_DELTA: u8 = 0b01;
const BATCH_FLAG_MEASURED: u8 = 0b10;

fn put_batch(out: &mut WireBuf, batch: &SmBatch) {
    out.put_usize(batch.len());
    let mut prev: Option<&SmMeta> = None;
    for b in &batch.sms {
        let delta = prev.and_then(|p| SmMetaDelta::between(p, &b.sm.meta));
        let mut flags = 0u8;
        if delta.is_some() {
            flags |= BATCH_FLAG_DELTA;
        }
        if b.measured {
            flags |= BATCH_FLAG_MEASURED;
        }
        out.push(flags);
        out.put_varint(b.sm.var.0 as u64);
        put_value(out, &b.sm.value);
        match delta {
            Some(d) => put_sm_meta_delta(out, &d),
            None => put_sm_meta(out, &b.sm.meta),
        }
        prev = Some(&b.sm.meta);
    }
}

fn put_matrix_delta(out: &mut WireBuf, d: &MatrixDelta) {
    match d {
        MatrixDelta::Cells(cells) => {
            out.push(0);
            out.put_usize(cells.len());
            for &(j, k, v) in cells {
                out.put_site(j);
                out.put_site(k);
                out.put_varint(v);
            }
        }
        MatrixDelta::Full(m) => {
            out.push(1);
            put_matrix(out, m);
        }
    }
}

fn put_vector_delta(out: &mut WireBuf, d: &VectorDelta) {
    match d {
        VectorDelta::Changed(pairs) => {
            out.push(0);
            out.put_usize(pairs.len());
            for &(j, c) in pairs {
                out.put_site(j);
                out.put_varint(c);
            }
        }
        VectorDelta::Full(v) => {
            out.push(1);
            put_vector(out, v);
        }
    }
}

fn put_log_delta(out: &mut WireBuf, d: &LogDelta) {
    out.put_usize(d.upserts.len());
    for e in &d.upserts {
        out.put_site(e.origin);
        out.put_varint(e.clock);
        put_dests(out, &e.dests);
    }
    out.put_usize(d.removals.len());
    for w in &d.removals {
        put_write_id(out, *w);
    }
}

fn put_crp_delta(out: &mut WireBuf, d: &CrpDelta) {
    out.put_usize(d.upserts.len());
    for w in &d.upserts {
        put_write_id(out, *w);
    }
    out.put_usize(d.removals.len());
    for s in &d.removals {
        out.put_site(*s);
    }
}

fn put_sm_meta_delta(out: &mut WireBuf, d: &SmMetaDelta) {
    match d {
        SmMetaDelta::FullTrack(m) => {
            out.push(0);
            put_matrix_delta(out, m);
        }
        SmMetaDelta::OptTrack { clock, delta } => {
            out.push(1);
            out.put_varint(*clock);
            put_log_delta(out, delta);
        }
        SmMetaDelta::Crp { clock, delta } => {
            out.push(2);
            out.put_varint(*clock);
            put_crp_delta(out, delta);
        }
        SmMetaDelta::OptP(v) => {
            out.push(3);
            put_vector_delta(out, v);
        }
    }
}

// ---------------------------------------------------------------------
// Reader — the borrowed decode walk
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    #[inline]
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 varint. Total: at most 10 bytes are consumed, and a
    /// continuation past the 64-bit range is a tag error, not a wrap.
    #[inline]
    fn varint(&mut self) -> Result<u64, WireError> {
        // Single-byte fast path: clock cells, counts, and site ids are
        // almost always < 128, and the matrix decode loop lives here.
        if let Some(&b) = self.buf.get(self.pos) {
            if b & 0x80 == 0 {
                self.pos += 1;
                return Ok(b as u64);
            }
        }
        self.varint_multi()
    }

    /// The multi-byte (or truncated) continuation of [`Reader::varint`].
    #[cold]
    fn varint_multi(&mut self) -> Result<u64, WireError> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(WireError::BadTag(b));
            }
            x |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    /// A count field for a sequence whose elements occupy ≥ 1 byte each:
    /// anything beyond the remaining input is a lie, rejected *before*
    /// allocation.
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.varint()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn site(&mut self) -> Result<SiteId, WireError> {
        let raw = self.varint()?;
        if raw as usize >= causal_clocks::dests::MAX_SITES {
            return Err(WireError::Truncated);
        }
        Ok(SiteId(raw as u16))
    }

    fn var(&mut self) -> Result<VarId, WireError> {
        let raw = self.varint()?;
        u32::try_from(raw)
            .map(VarId)
            .map_err(|_| WireError::Truncated)
    }

    fn write_id(&mut self) -> Result<WriteId, WireError> {
        Ok(WriteId {
            site: self.site()?,
            clock: self.varint()?,
        })
    }

    fn value(&mut self) -> Result<VersionedValue, WireError> {
        let writer = self.write_id()?;
        let data = self.varint()?;
        let payload_len = u32::try_from(self.varint()?).map_err(|_| WireError::Truncated)?;
        Ok(VersionedValue {
            writer,
            data,
            payload_len,
        })
    }

    fn dim(&mut self) -> Result<usize, WireError> {
        // Matrix/vector dimension: cap to the sane range before allocating
        // n² cells from attacker-controlled input.
        let n = self.varint()? as usize;
        if n > causal_clocks::dests::MAX_SITES {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn matrix(&mut self) -> Result<MatrixClock, WireError> {
        // One pass into a pre-sized cell vector: building the zero matrix
        // first and `set()`ing every cell touched the `n²` cells twice and
        // cost an index computation per cell — ~1.8× the encode cost on
        // the Full-Track hot path before this was flattened.
        let n = self.dim()?;
        let mut cells = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            cells.push(self.varint()?);
        }
        Ok(MatrixClock::from_cells(n, cells))
    }

    fn vector(&mut self) -> Result<VectorClock, WireError> {
        let n = self.dim()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(self.varint()?);
        }
        Ok(VectorClock::from_entries(entries))
    }

    fn dests(&mut self) -> Result<DestSet, WireError> {
        let n = self.count()?;
        if n > causal_clocks::dests::MAX_SITES {
            return Err(WireError::Truncated);
        }
        let mut d = DestSet::EMPTY;
        for _ in 0..n {
            d.insert(self.site()?);
        }
        Ok(d)
    }

    fn log_entry(&mut self) -> Result<LogEntry, WireError> {
        let origin = self.site()?;
        let clock = self.varint()?;
        let dests = self.dests()?;
        Ok(LogEntry::new(origin, clock, dests))
    }

    fn log(&mut self) -> Result<Log, WireError> {
        let n = self.count()?;
        let mut log = Log::new();
        for _ in 0..n {
            log.upsert(self.log_entry()?);
        }
        Ok(log)
    }

    fn crp_log(&mut self) -> Result<CrpLog, WireError> {
        let n = self.count()?;
        let mut log = CrpLog::new();
        for _ in 0..n {
            log.observe(self.write_id()?);
        }
        Ok(log)
    }

    fn sm_meta(&mut self) -> Result<SmMeta, WireError> {
        Ok(match self.u8()? {
            0 => SmMeta::FullTrack {
                write: Arc::new(self.matrix()?),
            },
            1 => SmMeta::OptTrack {
                clock: self.varint()?,
                log: Arc::new(self.log()?),
            },
            2 => SmMeta::Crp {
                clock: self.varint()?,
                log: Arc::new(self.crp_log()?),
            },
            3 => SmMeta::OptP {
                write: Arc::new(self.vector()?),
            },
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn rm_meta(&mut self) -> Result<RmMeta, WireError> {
        Ok(match self.u8()? {
            0 => RmMeta::FullTrack(None),
            1 => RmMeta::FullTrack(Some(Arc::new(self.matrix()?))),
            2 => RmMeta::OptTrack(None),
            3 => RmMeta::OptTrack(Some(Arc::new(self.log()?))),
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn sm_body(&mut self) -> Result<Sm, WireError> {
        Ok(Sm {
            var: self.var()?,
            value: self.value()?,
            meta: self.sm_meta()?,
        })
    }

    fn matrix_delta(&mut self) -> Result<MatrixDelta, WireError> {
        Ok(match self.u8()? {
            0 => {
                let n = self.count()?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    let j = self.site()?;
                    let k = self.site()?;
                    cells.push((j, k, self.varint()?));
                }
                MatrixDelta::Cells(cells)
            }
            1 => MatrixDelta::Full(self.matrix()?),
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn vector_delta(&mut self) -> Result<VectorDelta, WireError> {
        Ok(match self.u8()? {
            0 => {
                let n = self.count()?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let j = self.site()?;
                    pairs.push((j, self.varint()?));
                }
                VectorDelta::Changed(pairs)
            }
            1 => VectorDelta::Full(self.vector()?),
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn log_delta(&mut self) -> Result<LogDelta, WireError> {
        let nu = self.count()?;
        let mut upserts = Vec::with_capacity(nu);
        for _ in 0..nu {
            upserts.push(self.log_entry()?);
        }
        let nr = self.count()?;
        let mut removals = Vec::with_capacity(nr);
        for _ in 0..nr {
            removals.push(self.write_id()?);
        }
        Ok(LogDelta { upserts, removals })
    }

    fn crp_delta(&mut self) -> Result<CrpDelta, WireError> {
        let nu = self.count()?;
        let mut upserts = Vec::with_capacity(nu);
        for _ in 0..nu {
            upserts.push(self.write_id()?);
        }
        let nr = self.count()?;
        let mut removals = Vec::with_capacity(nr);
        for _ in 0..nr {
            removals.push(self.site()?);
        }
        Ok(CrpDelta { upserts, removals })
    }

    fn sm_meta_delta(&mut self) -> Result<SmMetaDelta, WireError> {
        Ok(match self.u8()? {
            0 => SmMetaDelta::FullTrack(self.matrix_delta()?),
            1 => SmMetaDelta::OptTrack {
                clock: self.varint()?,
                delta: self.log_delta()?,
            },
            2 => SmMetaDelta::Crp {
                clock: self.varint()?,
                delta: self.crp_delta()?,
            },
            3 => SmMetaDelta::OptP(self.vector_delta()?),
            t => return Err(WireError::BadTag(t)),
        })
    }

    /// Guard sparse deltas against out-of-range coordinates before
    /// applying them to `prev` — a corrupted frame must not index past the
    /// predecessor's clock dimensions.
    fn delta_fits(delta: &SmMetaDelta, prev: &SmMeta) -> bool {
        match (delta, prev) {
            (SmMetaDelta::FullTrack(MatrixDelta::Cells(cells)), SmMeta::FullTrack { write }) => {
                let n = write.n();
                cells
                    .iter()
                    .all(|&(j, k, _)| j.index() < n && k.index() < n)
            }
            (SmMetaDelta::OptP(VectorDelta::Changed(pairs)), SmMeta::OptP { write }) => {
                pairs.iter().all(|&(j, _)| j.index() < write.len())
            }
            _ => true,
        }
    }

    fn batch(&mut self) -> Result<SmBatch, WireError> {
        let n = self.count()?;
        if n == 0 {
            // An empty batch is never encoded; reject rather than build a
            // frame the unbatch path would choke on.
            return Err(WireError::BadTag(0));
        }
        let mut sms: Vec<BatchedSm> = Vec::with_capacity(n);
        for _ in 0..n {
            let flags = self.u8()?;
            if flags & !(BATCH_FLAG_DELTA | BATCH_FLAG_MEASURED) != 0 {
                return Err(WireError::BadTag(flags));
            }
            let measured = flags & BATCH_FLAG_MEASURED != 0;
            let var = self.var()?;
            let value = self.value()?;
            let meta = if flags & BATCH_FLAG_DELTA != 0 {
                let delta = self.sm_meta_delta()?;
                let prev = sms.last().ok_or(WireError::BadTag(flags))?;
                if !Self::delta_fits(&delta, &prev.sm.meta) {
                    return Err(WireError::Truncated);
                }
                delta
                    .apply_to(&prev.sm.meta)
                    .ok_or(WireError::BadTag(flags))?
            } else {
                self.sm_meta()?
            };
            sms.push(BatchedSm {
                sm: Sm { var, value, meta },
                measured,
            });
        }
        Ok(SmBatch { sms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_log() -> Log {
        let mut log = Log::new();
        log.upsert(LogEntry::new(
            SiteId(1),
            7,
            DestSet::from_sites([SiteId(0), SiteId(3)]),
        ));
        log.upsert(LogEntry::new(SiteId(2), 1, DestSet::EMPTY));
        log
    }

    fn sample_batch() -> Msg {
        // Three matrix SMs whose snapshots grow — the 2nd and 3rd encode
        // as deltas.
        let mut m = MatrixClock::new(5);
        m.set(SiteId(0), SiteId(1), 3);
        let sms = (0..3u64)
            .map(|i| {
                m.increment(SiteId(0), SiteId(2));
                BatchedSm {
                    sm: Sm {
                        var: VarId(i as u32),
                        value: VersionedValue::new(WriteId::new(SiteId(0), i + 1), 40 + i),
                        meta: SmMeta::FullTrack {
                            write: Arc::new(m.clone()),
                        },
                    },
                    measured: i != 0,
                }
            })
            .collect();
        Msg::Batch(Arc::new(SmBatch { sms }))
    }

    #[test]
    fn roundtrip_each_variant() {
        let value = VersionedValue::with_payload(WriteId::new(SiteId(3), 9), 42, 1000);
        let msgs = vec![
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::FullTrack {
                    write: Arc::new(MatrixClock::new(4)),
                },
            }),
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::OptTrack {
                    clock: 9,
                    log: Arc::new(sample_log()),
                },
            }),
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::Crp {
                    clock: 9,
                    log: Arc::new({
                        let mut l = CrpLog::new();
                        l.observe(WriteId::new(SiteId(0), 3));
                        l
                    }),
                },
            }),
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::OptP {
                    write: Arc::new(VectorClock::new(6)),
                },
            }),
            Msg::Fm(Fm { var: VarId(0) }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: None,
                meta: RmMeta::OptTrack(None),
            }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: Some(value),
                meta: RmMeta::OptTrack(Some(Arc::new(sample_log()))),
            }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: Some(value),
                meta: RmMeta::FullTrack(Some(Arc::new(MatrixClock::new(3)))),
            }),
            sample_batch(),
        ];
        for msg in msgs {
            let bytes = encode(&msg);
            let back = decode(&bytes).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn batch_delta_encoding_is_smaller_than_full_and_exact() {
        let msg = sample_batch();
        let bytes = encode(&msg);
        // The same three SMs encoded individually are larger in total:
        // the deltas carry single changed cells instead of 25-cell grids.
        let Msg::Batch(batch) = &msg else {
            unreachable!()
        };
        let individual: usize = batch
            .sms
            .iter()
            .map(|b| encode(&Msg::Sm(b.sm.clone())).len())
            .sum();
        assert!(
            bytes.len() < individual,
            "batch {} bytes vs {} individually",
            bytes.len(),
            individual
        );
        assert_eq!(decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn frame_view_classifies_without_decoding() {
        let bytes = encode(&Msg::Fm(Fm { var: VarId(3) }));
        let frame = Frame::new(&bytes).unwrap();
        assert_eq!(frame.kind(), MsgKind::Fm);
        let bytes = encode(&sample_batch());
        assert_eq!(Frame::new(&bytes).unwrap().kind(), MsgKind::Sm);
        assert!(matches!(Frame::new(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn encode_with_reuses_the_scratch_without_allocating_a_vec() {
        let msg = Msg::Fm(Fm { var: VarId(700) });
        let len = encode_with(&msg, |b| b.len());
        assert_eq!(len, encode(&msg).len());
        // Re-entrant use must still produce correct bytes.
        let nested = encode_with(&msg, |outer| {
            let inner = encode_with(&msg, |b| b.to_vec());
            assert_eq!(outer, &inner[..]);
            inner
        });
        assert_eq!(nested, encode(&msg));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        for msg in [
            Msg::Sm(Sm {
                var: VarId(5),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 0),
                meta: SmMeta::OptP {
                    write: Arc::new(VectorClock::new(8)),
                },
            }),
            sample_batch(),
        ] {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                assert_eq!(
                    decode(&bytes[..cut]),
                    Err(WireError::Truncated),
                    "cut={cut}"
                );
            }
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(decode(&[9]), Err(WireError::BadTag(9)));
        assert!(matches!(decode(&[]), Err(WireError::Truncated)));
        // Batch with count 0.
        assert_eq!(decode(&[3, 0]), Err(WireError::BadTag(0)));
        // Batch whose first element claims to be a delta (no predecessor).
        // count=1, flags=delta, then nothing sensible.
        assert!(decode(&[3, 1, 1, 0]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&Msg::Fm(Fm { var: VarId(3) }));
        bytes.push(0xFF);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn oversized_matrix_rejected() {
        // Tag 0 (Sm) + var + value + meta tag 0 (FullTrack) + n too large:
        // rejected by the dimension guard before any allocation.
        let mut buf = WireBuf::new();
        encode_into(
            &Msg::Sm(Sm {
                var: VarId(3),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 0),
                meta: SmMeta::FullTrack {
                    write: Arc::new(MatrixClock::new(1)),
                },
            }),
            &mut buf,
        );
        let bytes = buf.as_slice();
        // Find the meta tag (last-but-two byte: tag, n=1, one zero cell)
        // and splice in a huge dimension instead.
        let mut evil = bytes[..bytes.len() - 2].to_vec();
        evil.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]); // n = 2^32-1
        assert_eq!(decode(&evil), Err(WireError::Truncated));
    }

    #[test]
    fn sequence_counts_are_checked_against_remaining_input() {
        // Opt-Track SM claiming 2^20 log entries in a 16-byte buffer must
        // be rejected before any Vec::with_capacity.
        let mut evil = vec![0u8]; // Sm
        evil.push(1); // var = 1
        evil.extend_from_slice(&[0, 1, 0, 0]); // value: writer (0,1), data 0, payload 0
        evil.push(1); // meta tag: OptTrack
        evil.push(7); // clock
        evil.extend_from_slice(&[0x80, 0x80, 0x40]); // log count = 2^20
        assert_eq!(decode(&evil), Err(WireError::Truncated));
    }

    #[test]
    fn routed_frame_roundtrips_every_variant() {
        let value = VersionedValue::new(WriteId::new(SiteId(3), 9), 42);
        let msgs = vec![
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::OptTrack {
                    clock: 9,
                    log: Arc::new(sample_log()),
                },
            }),
            Msg::Fm(Fm { var: VarId(0) }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: Some(value),
                meta: RmMeta::OptTrack(None),
            }),
            sample_batch(),
        ];
        for msg in msgs {
            let (src, dst) = (SiteId(17), SiteId(2));
            let bytes = encode_routed_with(src, dst, &msg, |b| b.to_vec());
            // The routing header costs exactly the two site varints.
            assert_eq!(bytes.len(), encode(&msg).len() + 2);
            let r = decode_routed(&bytes).expect("roundtrip");
            assert_eq!(r.src, src);
            assert_eq!(r.dst, dst);
            assert_eq!(r.msg, msg);
        }
    }

    #[test]
    fn routed_decode_is_total_on_truncation() {
        let msg = Msg::Sm(Sm {
            var: VarId(5),
            value: VersionedValue::new(WriteId::new(SiteId(3), 9), 42),
            meta: SmMeta::OptTrack {
                clock: 9,
                log: Arc::new(sample_log()),
            },
        });
        let bytes = encode_routed_with(SiteId(1), SiteId(3), &msg, |b| b.to_vec());
        for cut in 0..bytes.len() {
            // Every prefix must fail cleanly, never panic.
            assert!(decode_routed(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn routed_header_rejects_out_of_range_sites() {
        // src beyond MAX_SITES: two-byte varint 0x80 0x20 = 4096.
        let msg = Msg::Fm(Fm { var: VarId(0) });
        let mut bytes = vec![0x80u8, 0x20, 0]; // src = 4096, dst = 0
        encode_with(&msg, |b| bytes.extend_from_slice(b));
        assert_eq!(decode_routed(&bytes), Err(WireError::Truncated));
    }

    proptest! {
        #[test]
        fn prop_opt_track_sm_roundtrip(
            var in 0u32..1000,
            clock in 1u64..1_000_000,
            site in 0u16..40,
            entries in proptest::collection::vec(
                (0u16..40, 1u64..100, proptest::collection::vec(0usize..40, 0..8)),
                0..12,
            ),
        ) {
            let mut log = Log::new();
            for (o, c, ds) in entries {
                log.upsert(LogEntry::new(
                    SiteId(o),
                    c,
                    DestSet::from_sites(ds.into_iter().map(SiteId::from)),
                ));
            }
            let msg = Msg::Sm(Sm {
                var: VarId(var),
                value: VersionedValue::new(WriteId::new(SiteId(site), clock), clock ^ 0xABCD),
                meta: SmMeta::OptTrack {
                    clock,
                    log: Arc::new(log),
                },
            });
            prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }

        #[test]
        fn prop_full_track_sm_roundtrip(n in 1usize..40, cells in proptest::collection::vec(0u64..1000, 1..64)) {
            let mut m = MatrixClock::new(n);
            for (i, &c) in cells.iter().enumerate() {
                let j = i % n;
                let k = (i / n) % n;
                m.set(SiteId::from(j), SiteId::from(k), c);
            }
            let msg = Msg::Sm(Sm {
                var: VarId(1),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 2),
                meta: SmMeta::FullTrack { write: Arc::new(m) },
            });
            prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }

        #[test]
        fn prop_optp_and_crp_roundtrip(n in 1usize..40, comps in proptest::collection::vec(0u64..1000, 1..40),
                                        tuples in proptest::collection::vec((0u16..40, 1u64..100), 0..12)) {
            let mut v = VectorClock::new(n);
            for (i, &c) in comps.iter().enumerate().take(n) {
                v.set(SiteId::from(i), c);
            }
            let m1 = Msg::Sm(Sm {
                var: VarId(1),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 2),
                meta: SmMeta::OptP { write: Arc::new(v) },
            });
            prop_assert_eq!(decode(&encode(&m1)).unwrap(), m1);

            let mut log = CrpLog::new();
            for (s, c) in tuples {
                log.observe(WriteId::new(SiteId(s), c));
            }
            let m2 = Msg::Sm(Sm {
                var: VarId(1),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 2),
                meta: SmMeta::Crp {
                    clock: 5,
                    log: Arc::new(log),
                },
            });
            prop_assert_eq!(decode(&encode(&m2)).unwrap(), m2);
        }

        #[test]
        fn prop_batch_roundtrip(
            n in 2usize..12,
            seeds in proptest::collection::vec((0u32..50, 1u64..1000, 0usize..30), 1..8),
            kind in 0u8..4,
            measured in proptest::collection::vec(any::<bool>(), 8),
        ) {
            // Build a chain of same-variant metas that actually evolve, so
            // the encoder exercises the delta path.
            let mut mat = MatrixClock::new(n);
            let mut vec_clock = VectorClock::new(n);
            let mut log = Log::new();
            let mut crp = CrpLog::new();
            let mut sms = Vec::new();
            for (i, &(var, clock, touch)) in seeds.iter().enumerate() {
                let touched = SiteId::from(touch % n);
                let meta = match kind {
                    0 => {
                        mat.increment(touched, SiteId::from((touch + 1) % n));
                        SmMeta::FullTrack { write: Arc::new(mat.clone()) }
                    }
                    1 => {
                        log.record_write(
                            touched,
                            clock + i as u64,
                            DestSet::from_sites([SiteId::from((touch + 1) % n)]),
                            causal_clocks::PruneConfig::default(),
                        );
                        SmMeta::OptTrack { clock, log: Arc::new(log.clone()) }
                    }
                    2 => {
                        if i % 2 == 0 {
                            crp.reset_to(WriteId::new(touched, clock));
                        } else {
                            crp.observe(WriteId::new(touched, clock));
                        }
                        SmMeta::Crp { clock, log: Arc::new(crp.clone()) }
                    }
                    _ => {
                        vec_clock.increment(touched);
                        SmMeta::OptP { write: Arc::new(vec_clock.clone()) }
                    }
                };
                sms.push(BatchedSm {
                    sm: Sm {
                        var: VarId(var),
                        value: VersionedValue::new(WriteId::new(touched, clock), clock),
                        meta,
                    },
                    measured: measured[i % measured.len()],
                });
            }
            let msg = Msg::Batch(Arc::new(SmBatch { sms }));
            prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }

        #[test]
        fn prop_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Total decoding: arbitrary bytes must produce Ok or Err, never
            // a panic or huge allocation.
            let _ = decode(&noise);
        }

        #[test]
        fn prop_decoder_total_under_bit_flips(
            seeds in proptest::collection::vec((0u32..50, 1u64..1000, 0usize..30), 1..6),
            flip_at in 0usize..4096,
            flip_bit in 0u8..8,
        ) {
            // Start from a *valid* frame (a batch, the deepest structure)
            // and flip one bit anywhere: decode must stay total and, when
            // it succeeds, re-encoding must not panic either.
            let mut mat = MatrixClock::new(6);
            let sms = seeds.iter().map(|&(var, clock, touch)| {
                mat.increment(SiteId::from(touch % 6), SiteId::from((touch + 1) % 6));
                BatchedSm {
                    sm: Sm {
                        var: VarId(var),
                        value: VersionedValue::new(WriteId::new(SiteId::from(touch % 6), clock), clock),
                        meta: SmMeta::FullTrack { write: Arc::new(mat.clone()) },
                    },
                    measured: true,
                }
            }).collect();
            let mut bytes = encode(&Msg::Batch(Arc::new(SmBatch { sms })));
            let i = flip_at % bytes.len();
            bytes[i] ^= 1 << flip_bit;
            if let Ok(msg) = decode(&bytes) {
                let _ = encode(&msg);
            }
        }
    }
}
