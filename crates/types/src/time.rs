//! Virtual time for the discrete-event simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, with nanosecond resolution.
///
/// The paper schedules operation events with inter-event delays drawn
/// uniformly from [5 ms, 2005 ms]; nanosecond resolution keeps channel
/// latencies and tie-breaking well below that granularity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in nanoseconds.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, with nanosecond resolution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to a real [`Duration`] (used by the threaded runtime when
    /// replaying a virtual schedule in wall-clock time, possibly scaled).
    #[inline]
    pub fn to_std(self) -> Duration {
        Duration::from_nanos(self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_roundtrip() {
        let t = SimTime::from_millis(2005);
        assert_eq!(t.as_millis(), 2005);
        assert_eq!(t.as_nanos(), 2_005_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(5) + SimDuration::from_millis(10);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(5)).as_nanos(), 10_000_000);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_millis(1));
        assert!(SimTime::from_millis(1) < SimTime::MAX);
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_millis(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn to_std_duration() {
        assert_eq!(
            SimDuration::from_millis(7).to_std(),
            Duration::from_millis(7)
        );
    }
}
