//! `serve` — deploy a live protocol cluster and benchmark it.
//!
//! The paper's testbed with a load generator attached: every site is a
//! real thread running the protocol state machine, the transport is either
//! in-process channels or a loopback-TCP mesh (`TCP_NODELAY` set), and
//! offered load comes from closed-loop clients with think time. The run
//! reports throughput (ops/s) and completion-latency tails (mean / p50 /
//! p99 via streaming P² estimators) next to the paper's message and
//! meta-byte accounting.
//!
//! ```text
//! serve [--protocol full-track|opt-track|opt-track-crp|optp|hb-track|all]
//!       [--transport channel|tcp|both] [--n <sites>]
//!       [--clients <per-site>] [--ops <per-client>] [--duration <secs>]
//!       [--workers <threads>] [--think-us <us>]
//!       [--w <write-rate>] [--q <variables>] [--seed <u64>]
//!       [--payload <bytes>] [--batch-ms <ms>] [--check]
//! ```
//!
//! `--batch-ms 2` turns on per-destination update batching with a 2 ms
//! wall-clock flush window (the runtime counterpart of the simulator's
//! `BatchPlan`); the batching counters land in the output. `--check` runs
//! the causal-consistency checker on the recorded execution history and
//! fails loudly on any violation. `--duration 5` runs a time-bounded load
//! instead of an op-count-bounded one: clients issue until the deadline and
//! then retire (if `--ops` is not also given, the per-client budget is
//! lifted to a large safety cap). `--workers` sets the scheduler pool size
//! (0 = one worker per core, the default; `--workers <n>` emulates the old
//! thread-per-site fabric).

use causal_checker::check;
use causal_metrics::Table;
use causal_proto::ProtocolKind;
use causal_runtime::{serve, BatchWindow, ServeConfig, ServeTransport};
use causal_types::MsgKind;
use std::time::Duration;

struct Args {
    protocols: Vec<ProtocolKind>,
    transports: Vec<ServeTransport>,
    n: usize,
    clients: usize,
    ops: Option<usize>,
    duration_s: Option<u64>,
    workers: usize,
    think_us: u64,
    w: f64,
    q: usize,
    seed: u64,
    payload: u32,
    batch_ms: Option<u64>,
    check: bool,
}

const ALL_PROTOCOLS: [ProtocolKind; 5] = [
    ProtocolKind::FullTrack,
    ProtocolKind::OptTrack,
    ProtocolKind::HbTrack,
    ProtocolKind::OptTrackCrp,
    ProtocolKind::OptP,
];

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: serve [--protocol full-track|opt-track|opt-track-crp|optp|hb-track|all] \
         [--transport channel|tcp|both] [--n <sites>] [--clients <per-site>] \
         [--ops <per-client>] [--duration <secs>] [--workers <threads>] [--think-us <us>] \
         [--w <write-rate>] [--q <variables>] \
         [--seed <u64>] [--payload <bytes>] [--batch-ms <ms>] [--check]"
    );
    std::process::exit(2);
}

fn parse() -> Args {
    let mut a = Args {
        protocols: ALL_PROTOCOLS.to_vec(),
        transports: vec![ServeTransport::Channel, ServeTransport::Tcp],
        n: 6,
        clients: 2,
        ops: None,
        duration_s: None,
        workers: 0,
        think_us: 1000,
        w: 0.3,
        q: 100,
        seed: 1,
        payload: 0,
        batch_ms: None,
        check: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| die(&format!("missing value for {flag}")))
                .clone()
        };
        match flag.as_str() {
            "--protocol" => {
                a.protocols = match val().as_str() {
                    "full-track" => vec![ProtocolKind::FullTrack],
                    "opt-track" => vec![ProtocolKind::OptTrack],
                    "opt-track-crp" => vec![ProtocolKind::OptTrackCrp],
                    "optp" => vec![ProtocolKind::OptP],
                    "hb-track" => vec![ProtocolKind::HbTrack],
                    "all" => ALL_PROTOCOLS.to_vec(),
                    other => die(&format!("unknown protocol {other}")),
                }
            }
            "--transport" => {
                a.transports = match val().as_str() {
                    "channel" => vec![ServeTransport::Channel],
                    "tcp" => vec![ServeTransport::Tcp],
                    "both" => vec![ServeTransport::Channel, ServeTransport::Tcp],
                    other => die(&format!("unknown transport {other}")),
                }
            }
            "--n" => a.n = val().parse().unwrap_or_else(|_| die("bad --n")),
            "--clients" => a.clients = val().parse().unwrap_or_else(|_| die("bad --clients")),
            "--ops" => a.ops = Some(val().parse().unwrap_or_else(|_| die("bad --ops"))),
            "--duration" => {
                a.duration_s = Some(val().parse().unwrap_or_else(|_| die("bad --duration")))
            }
            "--workers" => a.workers = val().parse().unwrap_or_else(|_| die("bad --workers")),
            "--think-us" => a.think_us = val().parse().unwrap_or_else(|_| die("bad --think-us")),
            "--w" => a.w = val().parse().unwrap_or_else(|_| die("bad --w")),
            "--q" => a.q = val().parse().unwrap_or_else(|_| die("bad --q")),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| die("bad --seed")),
            "--payload" => a.payload = val().parse().unwrap_or_else(|_| die("bad --payload")),
            "--batch-ms" => {
                a.batch_ms = Some(val().parse().unwrap_or_else(|_| die("bad --batch-ms")))
            }
            "--check" => a.check = true,
            "--help" | "-h" => die(""),
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if !(0.0..=1.0).contains(&a.w) {
        die("--w must be in [0, 1]");
    }
    if a.n < 2 {
        die("--n must be at least 2");
    }
    a
}

/// Per-client op budget when `--duration` bounds the run instead of `--ops`:
/// effectively unbounded, but finite so the generator's arithmetic stays sane.
const DURATION_MODE_OPS_CAP: usize = 1 << 30;

fn main() {
    let a = parse();
    let ops_per_client = a.ops.unwrap_or(match a.duration_s {
        Some(_) => DURATION_MODE_OPS_CAP,
        None => 100,
    });
    let mut t = Table::new(
        format!(
            "serve: n = {}, {} clients/site x {}, think {} us, w = {}, q = {}{}",
            a.n,
            a.clients,
            match a.duration_s {
                Some(s) => format!("{s} s"),
                None => format!("{ops_per_client} ops"),
            },
            a.think_us,
            a.w,
            a.q,
            match a.batch_ms {
                Some(ms) => format!(", batch window {ms} ms"),
                None => String::new(),
            }
        ),
        &[
            "protocol",
            "transport",
            "ops",
            "ops/s",
            "mean us",
            "p50 us",
            "p99 us",
            "sm frames",
            "sm KB",
            "batched",
            "conn errs",
        ],
    );
    for &kind in &a.protocols {
        for &transport in &a.transports {
            let mut cfg = ServeConfig::quick(kind, a.n, transport, a.seed);
            cfg.load.clients_per_site = a.clients;
            cfg.load.ops_per_client = ops_per_client;
            cfg.load.duration = a.duration_s.map(Duration::from_secs);
            cfg.workers = a.workers;
            cfg.load.think = Duration::from_micros(a.think_us);
            cfg.load.w_rate = a.w;
            cfg.load.q = a.q;
            cfg.payload_len = a.payload;
            cfg.batch = a
                .batch_ms
                .map(|ms| BatchWindow::windowed(Duration::from_millis(ms)));
            eprintln!("[serve] {kind} over {} …", transport.label());
            let r = serve(&cfg).unwrap_or_else(|e| {
                eprintln!("error: {kind}/{}: {e:?}", transport.label());
                std::process::exit(1);
            });
            if r.final_pending != 0 {
                eprintln!("error: {kind}: {} updates left parked", r.final_pending);
                std::process::exit(1);
            }
            if a.check {
                let v = check(&r.history);
                if !v.protocol_clean() {
                    eprintln!("error: {kind}: causal violations: {:?}", v.examples);
                    std::process::exit(1);
                }
            }
            let m = &r.metrics;
            t.push_row(vec![
                kind.to_string(),
                transport.label().to_string(),
                r.ops.to_string(),
                format!("{:.0}", r.ops_per_sec()),
                format!("{:.0}", r.latency.mean_us),
                format!("{:.0}", r.latency.p50_us),
                format!("{:.0}", r.latency.p99_us),
                m.all.count(MsgKind::Sm).to_string(),
                format!("{:.1}", m.all.bytes(MsgKind::Sm) as f64 / 1024.0),
                m.batched_sms.to_string(),
                m.transport_conn_errors.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    if a.check {
        eprintln!("[serve] all histories causally consistent");
    }
}
