//! Replication planner: should your deployment replicate partially or
//! fully?
//!
//! Applies the paper's analytic crossover (eq. (2): partial replication
//! sends fewer messages iff `w_rate > 2/(n+1)`) and then validates the
//! recommendation with short simulations of both configurations.
//!
//! ```text
//! cargo run --release --example replication_planner -- <n> <w_rate>
//! cargo run --release --example replication_planner -- 12 0.35
//! ```

use causal_repro::experiments::analytic;
use causal_repro::prelude::*;

fn simulate(n: usize, w_rate: f64, partial: bool) -> (f64, f64) {
    let protocol = if partial {
        ProtocolKind::OptTrack
    } else {
        ProtocolKind::OptTrackCrp
    };
    let mut cfg = if partial {
        SimConfig::paper_partial(protocol, n, w_rate, 123)
    } else {
        SimConfig::paper_full(protocol, n, w_rate, 123)
    };
    cfg.workload.events_per_process = 200;
    let r = causal_repro::simnet::run(&cfg);
    (
        r.metrics.measured.total_count() as f64,
        r.metrics.measured.total_bytes() as f64,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(12)
        .clamp(2, 100);
    let w_rate: f64 = args
        .next()
        .and_then(|a| a.parse::<f64>().ok())
        .unwrap_or(0.35)
        .clamp(0.0, 1.0);

    let threshold = analytic::crossover_w_rate(n);
    println!("deployment: n = {n} sites, expected write rate = {w_rate}");
    println!("eq. (2) crossover: w_rate > 2/(n+1) = {threshold:.3}\n");

    let p = ((0.3 * n as f64).round() as usize).max(1);
    let ops = 1000.0;
    let analytic_partial =
        analytic::partial_message_count(n, p, ops * w_rate, ops * (1.0 - w_rate));
    let analytic_full = analytic::full_message_count(n, ops * w_rate);
    println!("analytic messages per 1000 ops: partial = {analytic_partial:.0}, full = {analytic_full:.0}");

    let (pc, pb) = simulate(n, w_rate, true);
    let (fc, fb) = simulate(n, w_rate, false);
    println!("simulated  (Opt-Track vs Opt-Track-CRP):");
    println!(
        "  partial: {pc:.0} messages, {:.1} KB metadata",
        pb / 1000.0
    );
    println!(
        "  full:    {fc:.0} messages, {:.1} KB metadata",
        fb / 1000.0
    );

    println!();
    if analytic::partial_wins(n, w_rate) {
        println!("recommendation: PARTIAL replication (p = {p})");
        println!(
            " * fewer messages ({:.0}% of full replication's)",
            100.0 * pc / fc
        );
        println!(" * each value stored on {p} sites instead of {n} — large payloads");
        println!(
            "   (photos, videos) are shipped and stored {0:.1}× less",
            n as f64 / p as f64
        );
        println!(" * cost: reads of non-local variables pay one fetch round trip");
    } else {
        println!("recommendation: FULL replication");
        println!(" * your write rate {w_rate} is below the crossover {threshold:.3};");
        println!("   read traffic would dominate and every remote read pays a round trip");
        println!(" * with Opt-Track-CRP the per-update metadata is O(d) ≈ constant");
    }
    assert_eq!(
        analytic::partial_wins(n, w_rate),
        pc < fc,
        "simulation must agree with eq. (2) — if you hit this, please file a bug"
    );
}
