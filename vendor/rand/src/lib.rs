//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small API subset it actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen_range` / `gen_bool` / `gen`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, fast, and statistically more than
//! adequate for simulation workloads. It is **not** the ChaCha12 generator
//! of the real `rand 0.8`, so random streams differ from upstream; every
//! consumer in this workspace only requires determinism under a fixed
//! seed, never a specific stream.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type uniformly samplable from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = self.end as u128 - self.start as u128;
                (self.start as u128 + rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let width = hi as u128 - lo as u128 + 1;
                (lo as u128 + rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Types drawable via [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p out of [0, 1]");
        unit_f64(self) < p
    }

    /// Draw from the standard distribution of `T` (full range for
    /// integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..2_000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&w));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
