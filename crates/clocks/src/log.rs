//! The Opt-Track local log `{⟨j, clock_j, Dests⟩}` (KS-algorithm style).
//!
//! Each entry records a write operation in the causal past together with the
//! set of destination replicas for which "this write was sent there" is
//! still *relevant explicit information*. The paper (§III-B) prunes this
//! information with two implicit conditions:
//!
//! 1. once an update `m` is applied at site `s₂`, the fact that `s₂` is one
//!    of `m`'s destinations is redundant in the causal future of the apply
//!    ([`Log::remove_site`], [`Log::prune_applied`]);
//! 2. if `send(m) →co send(m')` and both updates are sent to `s₂`, then
//!    `s₂ ∈ m.Dests` is redundant in the causal future of `send(m')`
//!    ([`Log::record_write`] pruning, and the same-sender normalization in
//!    [`Log::normalize`] — same-sender sends are totally ordered by `→co`
//!    through program order).
//!
//! Entries whose destination list becomes empty are purged, **except** the
//! most recent entry per origin, which is kept as a marker: the paper notes
//! "it is important to keep entries with empty destination list as long as
//! they represent the most recent updates applied from some site".

use crate::dests::DestSet;
use causal_types::{MetaSized, SiteId, SizeModel, WriteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One record of the Opt-Track log: write `⟨origin, clock⟩` was multicast to
/// `dests`, and that fact is still relevant for the sites remaining in
/// `dests`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LogEntry {
    /// The application process that performed the write.
    pub origin: SiteId,
    /// The writer's local write counter for this write (1-based).
    pub clock: u64,
    /// Destinations for which the information is still explicit.
    pub dests: DestSet,
}

impl LogEntry {
    /// Construct an entry.
    pub fn new(origin: SiteId, clock: u64, dests: DestSet) -> Self {
        LogEntry {
            origin,
            clock,
            dests,
        }
    }

    /// The write this entry describes.
    pub fn write_id(&self) -> WriteId {
        WriteId::new(self.origin, self.clock)
    }
}

/// Pruning switches. The defaults implement the full Opt-Track behaviour;
/// the ablation benches flip individual switches to quantify their effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PruneConfig {
    /// Apply implicit condition 2 (supersede destination info when a later
    /// causally-ordered send covers the same destinations). Disabling this
    /// reproduces a naive log that only shrinks via condition 1.
    pub condition2: bool,
    /// Keep the newest (possibly empty) entry per origin as a marker of the
    /// most recent known write from that origin.
    pub keep_markers: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            condition2: true,
            keep_markers: true,
        }
    }
}

/// The Opt-Track local log `LOG_i` (also the piggybacked `L_w` and the
/// per-variable `LastWriteOn⟨h⟩` structure).
///
/// Entries are kept sorted by `(origin, clock)`; all operations preserve the
/// invariant. The log never contains two entries for the same write.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Log {
    entries: Vec<LogEntry>,
}

impl Log {
    /// The empty log.
    pub fn new() -> Self {
        Log::default()
    }

    /// Number of entries (including empty-destination markers).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the log holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in `(origin, clock)` order.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Entry for a specific write, if present.
    pub fn get(&self, origin: SiteId, clock: u64) -> Option<&LogEntry> {
        self.position(origin, clock).map(|i| &self.entries[i])
    }

    /// The newest clock this log knows for `origin` (marker entries count).
    pub fn latest_clock(&self, origin: SiteId) -> Option<u64> {
        // Entries are sorted by (origin, clock): scan the origin's group end.
        let mut latest = None;
        for e in &self.entries {
            if e.origin == origin {
                latest = Some(e.clock);
            } else if e.origin > origin {
                break;
            }
        }
        latest
    }

    fn position(&self, origin: SiteId, clock: u64) -> Option<usize> {
        self.entries
            .binary_search_by(|e| (e.origin, e.clock).cmp(&(origin, clock)))
            .ok()
    }

    fn insert_sorted(&mut self, entry: LogEntry) {
        match self
            .entries
            .binary_search_by(|e| (e.origin, e.clock).cmp(&(entry.origin, entry.clock)))
        {
            Ok(i) => {
                // Same write already present: combine knowledge (both sides'
                // prunings are sound, so intersect).
                let d = self.entries[i].dests.intersect(&entry.dests);
                self.entries[i].dests = d;
            }
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// Insert or combine an entry. If the same write is already present the
    /// destination sets are intersected (both sides' prunings are sound).
    /// Used by the protocols to attach a write's own entry to the log stored
    /// in `LastWriteOn⟨h⟩`.
    pub fn upsert(&mut self, entry: LogEntry) {
        self.insert_sorted(entry);
    }

    /// Record a local write: implicit condition 2 prunes every existing
    /// entry's destinations by the new write's destination set (the new send
    /// is in the causal future of everything in the log), empties are purged
    /// and the write's own entry `⟨origin, clock, dests⟩` is appended.
    ///
    /// Call *after* snapshotting the log for piggybacking: the paper's SM
    /// carries "the currently stored records", i.e. the pre-write log.
    pub fn record_write(&mut self, origin: SiteId, clock: u64, dests: DestSet, cfg: PruneConfig) {
        if cfg.condition2 {
            for e in &mut self.entries {
                e.dests.subtract(&dests);
            }
        }
        self.insert_sorted(LogEntry::new(origin, clock, dests));
        self.normalize(cfg);
    }

    /// Implicit condition 1 for a single site: remove `site` from every
    /// entry's destination set (used when `site` applies an update — its own
    /// membership in any piggybacked destination list is now redundant,
    /// because the activation predicate guaranteed those writes were applied
    /// at `site` first).
    pub fn remove_site(&mut self, site: SiteId) {
        for e in &mut self.entries {
            e.dests.remove(site);
        }
    }

    /// Implicit condition 1 driven by apply knowledge: remove `site` from
    /// every entry whose write is already applied at `site`, as witnessed by
    /// `last_applied_clock[origin]` (the largest write-clock from `origin`
    /// applied at `site`). Sound because multicasts from one origin reach a
    /// given destination in clock order over FIFO channels.
    pub fn prune_applied(&mut self, site: SiteId, last_applied_clock: &[u64]) {
        for e in &mut self.entries {
            if e.dests.contains(site) && e.clock <= last_applied_clock[e.origin.index()] {
                e.dests.remove(site);
            }
        }
    }

    /// MERGE: fold the piggybacked log `incoming` (the `LastWriteOn⟨h⟩` of a
    /// read value) into this local log, then normalize.
    ///
    /// Rules (KS-style; each side's prunings are sound, so combined
    /// knowledge is the strongest of both):
    ///
    /// * same write in both logs → intersect destination sets;
    /// * a side that knows a **strictly newer** write from an origin but no
    ///   longer carries an older entry has, somewhere in its causal past,
    ///   proven every destination of that older write redundant (entries
    ///   are only ever dropped once their destination set empties, and
    ///   emptying is justified by implicit condition 1 or 2, which are
    ///   facts about the causal structure — once true, true forever).
    ///   Hence: an incoming entry older than the local marker for its
    ///   origin is skipped, and a local entry older than the incoming
    ///   side's marker is emptied. This cross-pruning is what keeps the
    ///   amortized log near `O(n)`; without the newest-per-origin markers
    ///   (which witness the "knows strictly newer" fact) it would be
    ///   unsound — which is why the paper insists on keeping them.
    pub fn merge(&mut self, incoming: &Log, cfg: PruneConfig) {
        // Worst case every incoming entry is new; reserving up front keeps
        // the per-entry `insert_sorted` calls from re-growing the vector.
        self.entries.reserve(incoming.entries.len());
        if cfg.condition2 {
            // Local entries fully superseded by the incoming side's
            // knowledge lose their destinations (purged below).
            for e in &mut self.entries {
                if incoming.get(e.origin, e.clock).is_none()
                    && incoming.latest_clock(e.origin) > Some(e.clock)
                {
                    e.dests = DestSet::EMPTY;
                }
            }
            // Pre-merge local markers decide which incoming entries are
            // already known-redundant here.
            let local_latest: Vec<(SiteId, u64)> = {
                let mut v: Vec<(SiteId, u64)> = Vec::new();
                for e in &self.entries {
                    match v.last_mut() {
                        Some((o, c)) if *o == e.origin => *c = e.clock,
                        _ => v.push((e.origin, e.clock)),
                    }
                }
                v
            };
            let latest_of = |origin: SiteId| -> Option<u64> {
                local_latest
                    .binary_search_by(|(o, _)| o.cmp(&origin))
                    .ok()
                    .map(|i| local_latest[i].1)
            };
            for e in &incoming.entries {
                if self.get(e.origin, e.clock).is_none() && latest_of(e.origin) > Some(e.clock) {
                    continue;
                }
                self.insert_sorted(*e);
            }
        } else {
            for e in &incoming.entries {
                self.insert_sorted(*e);
            }
        }
        self.normalize(cfg);
    }

    /// Normalization pass: same-sender condition 2 (an older entry's
    /// destinations are pruned by every newer same-sender entry's current
    /// destinations) followed by a purge of empty entries (keeping the
    /// newest entry per origin as a marker when configured).
    pub fn normalize(&mut self, cfg: PruneConfig) {
        if cfg.condition2 {
            // Entries are sorted by (origin, clock); walk each origin group
            // from newest to oldest, accumulating the union of newer dests.
            let mut group_end = self.entries.len();
            while group_end > 0 {
                let origin = self.entries[group_end - 1].origin;
                let mut group_start = group_end;
                while group_start > 0 && self.entries[group_start - 1].origin == origin {
                    group_start -= 1;
                }
                let mut newer = DestSet::EMPTY;
                for i in (group_start..group_end).rev() {
                    self.entries[i].dests.subtract(&newer);
                    newer = newer.union(&self.entries[i].dests);
                }
                group_end = group_start;
            }
        }
        self.purge(cfg);
    }

    /// Drop entries with empty destination sets. With `cfg.keep_markers`,
    /// the newest entry of each origin survives even when empty.
    pub fn purge(&mut self, cfg: PruneConfig) {
        let entries = &mut self.entries;
        let len = entries.len();
        let mut keep = Vec::with_capacity(len);
        for i in 0..len {
            let e = &entries[i];
            let is_newest_of_origin = i + 1 >= len || entries[i + 1].origin != e.origin;
            keep.push(!e.dests.is_empty() || (cfg.keep_markers && is_newest_of_origin));
        }
        let mut i = 0;
        entries.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Total number of site ids across all destination lists (for size
    /// accounting and diagnostics).
    pub fn dest_id_count(&self) -> usize {
        self.entries.iter().map(|e| e.dests.len()).sum()
    }
}

impl fmt::Debug for Log {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Log[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "⟨{},{},{:?}⟩", e.origin, e.clock, e.dests)?;
        }
        write!(f, "]")
    }
}

impl MetaSized for Log {
    /// Each entry is transmitted as two scalars (`origin`, `clock`) plus its
    /// destination set. The paper's Java implementation keeps the log as
    /// three primitive lists `⟨j⟩, ⟨clock_j⟩, ⟨Dests⟩` — under the
    /// `java_like` model each entry therefore costs three packed words;
    /// under the `wire` model the destination set is an explicit id list.
    fn meta_size(&self, model: &SizeModel) -> u64 {
        let mut total = model.scalars(2 * self.len());
        for e in &self.entries {
            total += model.dest_set(e.dests.len());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(i: usize) -> SiteId {
        SiteId::from(i)
    }
    fn d(xs: &[usize]) -> DestSet {
        DestSet::from_sites(xs.iter().map(|&i| s(i)))
    }
    fn cfg() -> PruneConfig {
        PruneConfig::default()
    }

    #[test]
    fn record_write_appends_own_entry() {
        let mut log = Log::new();
        log.record_write(s(0), 1, d(&[1, 2]), cfg());
        assert_eq!(log.len(), 1);
        let e = log.get(s(0), 1).unwrap();
        assert_eq!(e.dests, d(&[1, 2]));
    }

    #[test]
    fn condition2_prunes_prior_entries_on_write() {
        let mut log = Log::new();
        log.record_write(s(1), 1, d(&[2, 3]), cfg());
        // Site 0 now writes to {2, 4}: destination 2 of the older entry is
        // superseded (a causally-later send covers it); 3 is not.
        log.record_write(s(0), 1, d(&[2, 4]), cfg());
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[3]));
        assert_eq!(log.get(s(0), 1).unwrap().dests, d(&[2, 4]));
    }

    #[test]
    fn condition2_disabled_keeps_everything() {
        let no_c2 = PruneConfig {
            condition2: false,
            keep_markers: true,
        };
        let mut log = Log::new();
        log.record_write(s(1), 1, d(&[2, 3]), no_c2);
        log.record_write(s(0), 1, d(&[2, 3]), no_c2);
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[2, 3]));
    }

    #[test]
    fn same_sender_condition2_in_normalize() {
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.insert_sorted(LogEntry::new(s(1), 2, d(&[2, 4])));
        log.normalize(cfg());
        // Older same-sender entry loses dests covered by the newer one.
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[3]));
        assert_eq!(log.get(s(1), 2).unwrap().dests, d(&[2, 4]));
    }

    #[test]
    fn purge_keeps_newest_marker_per_origin() {
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 1, DestSet::EMPTY));
        log.insert_sorted(LogEntry::new(s(1), 2, DestSet::EMPTY));
        log.insert_sorted(LogEntry::new(s(2), 1, d(&[0])));
        log.purge(cfg());
        assert!(log.get(s(1), 1).is_none(), "old empty entry purged");
        assert!(log.get(s(1), 2).is_some(), "newest kept as marker");
        assert!(log.get(s(2), 1).is_some());
    }

    #[test]
    fn purge_without_markers_drops_all_empties() {
        let no_markers = PruneConfig {
            condition2: true,
            keep_markers: false,
        };
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 2, DestSet::EMPTY));
        log.purge(no_markers);
        assert!(log.is_empty());
    }

    #[test]
    fn merge_intersects_common_entries() {
        let mut a = Log::new();
        a.insert_sorted(LogEntry::new(s(1), 1, d(&[2, 3, 4])));
        let mut b = Log::new();
        b.insert_sorted(LogEntry::new(s(1), 1, d(&[3, 4, 5])));
        a.merge(&b, cfg());
        assert_eq!(a.get(s(1), 1).unwrap().dests, d(&[3, 4]));
    }

    #[test]
    fn merge_inserts_unknown_entries() {
        let mut a = Log::new();
        let mut b = Log::new();
        b.insert_sorted(LogEntry::new(s(2), 7, d(&[0, 1])));
        a.merge(&b, cfg());
        assert_eq!(a.get(s(2), 7).unwrap().dests, d(&[0, 1]));
    }

    #[test]
    fn remove_site_clears_membership_everywhere() {
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 1, d(&[0, 2])));
        log.insert_sorted(LogEntry::new(s(3), 4, d(&[0])));
        log.remove_site(s(0));
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[2]));
        assert!(log.get(s(3), 4).unwrap().dests.is_empty());
    }

    #[test]
    fn prune_applied_uses_clock_witness() {
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 3, d(&[0, 2])));
        log.insert_sorted(LogEntry::new(s(1), 9, d(&[0, 2])));
        // Site 0 has applied writes from s1 up to clock 5: entry clock 3 is
        // known applied at 0, entry clock 9 is not.
        let mut last = vec![0u64; 4];
        last[1] = 5;
        log.prune_applied(s(0), &last);
        assert_eq!(log.get(s(1), 3).unwrap().dests, d(&[2]));
        assert_eq!(log.get(s(1), 9).unwrap().dests, d(&[0, 2]));
    }

    #[test]
    fn latest_clock_per_origin() {
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 3, d(&[0])));
        log.insert_sorted(LogEntry::new(s(1), 7, d(&[0])));
        log.insert_sorted(LogEntry::new(s(2), 1, d(&[0])));
        assert_eq!(log.latest_clock(s(1)), Some(7));
        assert_eq!(log.latest_clock(s(2)), Some(1));
        assert_eq!(log.latest_clock(s(0)), None);
    }

    #[test]
    fn meta_size_counts_scalars_and_dest_sets() {
        let m = SizeModel::java_like();
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.insert_sorted(LogEntry::new(s(2), 1, d(&[4])));
        // Packed encoding: 2 entries × 3 words × 10 B = 60.
        assert_eq!(log.meta_size(&m), 60);
        // Wire encoding: 2 entries × 2 scalars × 4 B + 3 ids × 2 B = 22.
        assert_eq!(log.meta_size(&SizeModel::wire()), 22);
    }

    #[test]
    fn duplicate_insert_is_intersection_not_duplicate() {
        let mut log = Log::new();
        log.insert_sorted(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.insert_sorted(LogEntry::new(s(1), 1, d(&[3, 4])));
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[3]));
    }

    /// Strategy: a small random log.
    fn arb_log() -> impl Strategy<Value = Log> {
        proptest::collection::vec(
            (
                0usize..6,
                1u64..8,
                proptest::collection::vec(0usize..6, 0..6),
            ),
            0..12,
        )
        .prop_map(|items| {
            let mut log = Log::new();
            for (o, c, ds) in items {
                log.insert_sorted(LogEntry::new(s(o), c, d(&ds)));
            }
            log
        })
    }

    proptest! {
        #[test]
        fn prop_normalize_is_idempotent(mut log in arb_log()) {
            log.normalize(cfg());
            let once = log.clone();
            log.normalize(cfg());
            prop_assert_eq!(log, once);
        }

        #[test]
        fn prop_normalize_never_grows_dests(log in arb_log()) {
            let mut n = log.clone();
            n.normalize(cfg());
            for e in n.iter() {
                let before = log.get(e.origin, e.clock).unwrap();
                prop_assert!(e.dests.is_subset(&before.dests));
            }
        }

        #[test]
        fn prop_merge_upper_bounds_knowledge(a in arb_log(), b in arb_log()) {
            // After merge, every write known to either side is known to the
            // result or was purged as empty/non-newest.
            let mut m = a.clone();
            m.merge(&b, cfg());
            for e in m.iter() {
                // Dests in the merge never exceed what either side knew.
                let da = a.get(e.origin, e.clock).map(|x| x.dests);
                let db = b.get(e.origin, e.clock).map(|x| x.dests);
                let bound = match (da, db) {
                    (Some(x), Some(y)) => x.intersect(&y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => DestSet::EMPTY,
                };
                prop_assert!(e.dests.is_subset(&bound));
            }
        }

        #[test]
        fn prop_entries_sorted_and_unique(a in arb_log(), b in arb_log()) {
            let mut m = a.clone();
            m.merge(&b, cfg());
            let keys: Vec<_> = m.iter().map(|e| (e.origin, e.clock)).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(keys, sorted);
        }

        #[test]
        fn prop_merge_commutative_on_normalized_logs(a in arb_log(), b in arb_log()) {
            // Two sound, normalized logs combine to the same knowledge
            // regardless of merge direction (intersection and the
            // newest-marker cross-pruning are both symmetric).
            let mut a = a;
            let mut b = b;
            a.normalize(cfg());
            b.normalize(cfg());
            let mut ab = a.clone();
            ab.merge(&b, cfg());
            let mut ba = b.clone();
            ba.merge(&a, cfg());
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_merge_idempotent(a in arb_log()) {
            let mut a = a;
            a.normalize(cfg());
            let mut aa = a.clone();
            aa.merge(&a, cfg());
            prop_assert_eq!(aa, a);
        }

        #[test]
        fn prop_markers_pin_latest_clock(mut log in arb_log()) {
            let latest_before: Vec<_> =
                (0..6).map(|o| log.latest_clock(s(o))).collect();
            log.normalize(cfg());
            for (o, expected) in latest_before.iter().enumerate() {
                // Normalization never loses track of the newest write per
                // origin (the marker rule).
                prop_assert_eq!(log.latest_clock(s(o)), *expected);
            }
        }
    }
}
