//! Torture: one loop, every protocol, every fault class, many seeds.
//!
//! This is the catch-all regression net: random system sizes, write rates,
//! latency models, partitions and pauses, across all five protocols, with
//! full checker verification of every run. Any change that weakens an
//! activation predicate, a pruning rule or the simulator's FIFO machinery
//! shows up here even if it slips past the targeted tests.

use causal_repro::clocks::DestSet;
use causal_repro::prelude::*;
use causal_repro::simnet::{PartitionWindow, PauseWindow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn torture_all_protocols_all_faults() {
    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    let protocols = [
        (ProtocolKind::FullTrack, true),
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::HbTrack, true),
        (ProtocolKind::OptTrackCrp, false),
        (ProtocolKind::OptP, false),
    ];
    for round in 0..30 {
        let (kind, partial) = protocols[round % protocols.len()];
        let n = rng.gen_range(2..10);
        let w = rng.gen_range(0.05..0.95);
        let seed = rng.gen();
        let mut cfg = if partial {
            SimConfig::paper_partial(kind, n, w, seed)
        } else {
            SimConfig::paper_full(kind, n, w, seed)
        };
        cfg.workload.events_per_process = rng.gen_range(20..60);
        cfg.record_history = true;
        // Random latency regime.
        cfg.latency = match rng.gen_range(0..3) {
            0 => LatencyModel::Constant {
                micros: rng.gen_range(100..50_000),
            },
            1 => LatencyModel::Uniform {
                min_micros: 1_000,
                max_micros: rng.gen_range(50_000..2_000_000),
            },
            _ => LatencyModel::GeoRing {
                base_micros: 2_000,
                per_hop_micros: rng.gen_range(1_000..30_000),
                jitter_micros: 10_000,
            },
        };
        // Random faults.
        if rng.gen_bool(0.5) && n >= 2 {
            cfg.partitions.push(PartitionWindow {
                start: SimTime::from_millis(rng.gen_range(1_000..10_000)),
                end: SimTime::from_millis(rng.gen_range(15_000..60_000)),
                side_a: DestSet::from_sites((0..n.div_ceil(2)).map(SiteId::from)),
            });
        }
        if rng.gen_bool(0.5) {
            cfg.pauses.push(PauseWindow {
                site: SiteId::from(rng.gen_range(0..n)),
                start: SimTime::from_millis(rng.gen_range(1_000..10_000)),
                end: SimTime::from_millis(rng.gen_range(15_000..60_000)),
            });
        }
        if rng.gen_bool(0.3) {
            cfg.workload.var_dist = VarDistribution::Zipf { theta: 0.99 };
        }

        let r = causal_repro::simnet::run(&cfg);
        assert_eq!(
            r.final_pending, 0,
            "round {round} {kind} n={n} w={w:.2}: parked forever"
        );
        let v = check(r.history.as_ref().unwrap());
        assert!(
            v.protocol_clean(),
            "round {round} {kind} n={n} w={w:.2} seed={seed}: {:?}",
            v.examples
        );
    }
}

/// A paused site inside a network partition: traffic addressed to it must
/// survive *both* fault layers — the channel holds it until the partition
/// heals, then the pause defers it until resume — in every overlap shape.
/// Regression for the interaction of the channel-level partition fixpoint
/// with the event-level pause deferral.
#[test]
fn pause_and_partition_overlap_in_every_shape() {
    // (partition, pause) windows in ms: partition strictly before pause,
    // pause nested inside partition, partition nested inside pause, and a
    // staggered overlap in each direction.
    let shapes: [((u64, u64), (u64, u64)); 5] = [
        ((1_000, 4_000), (5_000, 9_000)),
        ((1_000, 20_000), (5_000, 9_000)),
        ((5_000, 9_000), (1_000, 20_000)),
        ((1_000, 8_000), (5_000, 15_000)),
        ((5_000, 15_000), (1_000, 8_000)),
    ];
    for (kind, partial) in [
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::OptTrackCrp, false),
    ] {
        for (i, ((ps, pe), (qs, qe))) in shapes.iter().enumerate() {
            let n = 5;
            let mut cfg = if partial {
                SimConfig::paper_partial(kind, n, 0.5, 77 + i as u64)
            } else {
                SimConfig::paper_full(kind, n, 0.5, 77 + i as u64)
            };
            cfg.workload.events_per_process = 40;
            cfg.record_history = true;
            cfg.partitions.push(PartitionWindow {
                start: SimTime::from_millis(*ps),
                end: SimTime::from_millis(*pe),
                // The paused site sits on the minority side of the cut.
                side_a: DestSet::from_sites([SiteId(1)]),
            });
            cfg.pauses.push(PauseWindow {
                site: SiteId(1),
                start: SimTime::from_millis(*qs),
                end: SimTime::from_millis(*qe),
            });
            let r = causal_repro::simnet::run(&cfg);
            assert_eq!(
                r.final_pending, 0,
                "{kind} shape {i}: parked forever under pause x partition"
            );
            let v = check(r.history.as_ref().unwrap());
            assert!(v.protocol_clean(), "{kind} shape {i}: {:?}", v.examples);
        }
    }
}
