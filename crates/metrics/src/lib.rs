//! # causal-metrics
//!
//! Measurement infrastructure for the simulation experiments: per-kind
//! message counters and byte accumulators ([`MessageStats`]), streaming
//! summary statistics ([`StatAccum`]), per-run aggregates ([`RunMetrics`])
//! and plain-text / CSV table rendering ([`Table`]).
//!
//! The paper's metrics (§V): total message count `m_c`, total and average
//! message meta-data size `m_s` per message class (SM / FM / RM), measured
//! after discarding the first 15 % of operation events as warm-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod latency;
pub mod quantile;
pub mod registry;
pub mod run;
pub mod stats;
pub mod table;

pub use latency::{LatencySummary, OpLatency};
pub use quantile::P2Quantile;
pub use registry::{SiteMetrics, SiteRegistry};
pub use run::RunMetrics;
pub use stats::{MessageStats, StatAccum};
pub use table::Table;
