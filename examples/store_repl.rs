//! An interactive shell for the causal key-value store.
//!
//! ```text
//! cargo run --release --example store_repl
//! > put greeting hello
//! > site 7
//! > get greeting
//! hello
//! > del greeting
//! > keys
//! greeting
//! > quit
//! ```
//!
//! Pipes work too:
//! `echo -e 'put a 1\nsite 4\nget a' | cargo run --example store_repl`.
//! The session follows the `site` command around the cluster, carrying its
//! causal context with it (session migration), so reads stay monotonic no
//! matter where the client roams.

use causal_repro::proto::ProtocolKind;
use causal_repro::store::StoreBuilder;
use causal_repro::types::SiteId;
use std::io::{BufRead, Write};

fn main() {
    let n = 10;
    let mut store = StoreBuilder::new()
        .sites(n)
        .replication(3)
        .protocol(ProtocolKind::OptTrack)
        .build()
        .expect("valid configuration");
    let mut session = store.session(SiteId(0));
    eprintln!(
        "causal store: {n} sites, p = 3, Opt-Track. commands: put <k> <v> | get <k> | \
         del <k> | site <0..{}> | keys | stats | quit",
        n - 1
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let _ = write!(out, "> ");
    let _ = out.flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("put") => {
                let (Some(k), Some(v)) = (parts.next(), parts.next()) else {
                    eprintln!("usage: put <key> <value>");
                    continue;
                };
                match session.put(&mut store, k, v.as_bytes().to_vec()) {
                    Ok(id) => eprintln!("ok {id}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Some("get") => {
                let Some(k) = parts.next() else {
                    eprintln!("usage: get <key>");
                    continue;
                };
                match session.get(&mut store, k) {
                    Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                    Ok(None) => println!("(nil)"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Some("del") => {
                let Some(k) = parts.next() else {
                    eprintln!("usage: del <key>");
                    continue;
                };
                match session.remove(&mut store, k) {
                    Ok(_) => eprintln!("ok"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Some("site") => {
                let Some(s) = parts.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("usage: site <0..{}>", n - 1);
                    continue;
                };
                if s >= n {
                    eprintln!("site out of range");
                    continue;
                }
                // Migrate: the new session adopts the old one's causal
                // context so guarantees carry across the move.
                let mut moved = store.session(SiteId::from(s));
                moved.adopt_context(&session);
                session = moved;
                eprintln!("now at s{s}");
            }
            Some("keys") => {
                let mut keys: Vec<&str> = store.keys().collect();
                keys.sort();
                for k in keys {
                    println!("{k}");
                }
            }
            Some("stats") => {
                eprintln!(
                    "site s{}, {} reads, {} writes, {} keys in directory",
                    session.site().index(),
                    session.read_count(),
                    session.write_count(),
                    store.key_count()
                );
            }
            Some("quit") | Some("exit") => break,
            Some(other) => eprintln!("unknown command: {other}"),
            None => {}
        }
        let _ = write!(out, "> ");
        let _ = out.flush();
    }
}
