//! Per-site metrics registry.
//!
//! [`RunMetrics`](crate::RunMetrics) aggregates a run into totals; the
//! registry keeps the same story *per site*, which is where asymmetries
//! live — one slow or lossy site shows up as an outlier row here while
//! the run-wide mean hides it. Counters are exact; dwell time and fetch
//! RTT additionally keep a streaming P² p99 so the tail survives
//! aggregation.

use crate::quantile::P2Quantile;
use crate::stats::StatAccum;
use serde::{Deserialize, Serialize};

/// Counters and latency summaries for one site.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SiteMetrics {
    /// Protocol messages this site sent (SM + FM + RM).
    pub sends: u64,
    /// Protocol messages delivered to this site's protocol layer.
    pub delivers: u64,
    /// Updates applied to this site's replica.
    pub applies: u64,
    /// Arriving updates the activation predicate parked in the pending
    /// buffer (releases are counted by `applies` with a non-zero dwell).
    pub buffered: u64,
    /// Data-frame retransmissions this site's transport performed.
    pub retransmits: u64,
    /// Pending-queue dwell time per applied update, virtual nanoseconds
    /// (0 when applied on arrival).
    pub dwell_ns: StatAccum,
    /// Streaming p99 of the dwell time.
    pub dwell_p99: P2Quantile,
    /// Remote-fetch round-trip time observed by this site as the reader.
    pub fetch_rtt_ns: StatAccum,
}

impl Default for SiteMetrics {
    fn default() -> Self {
        SiteMetrics {
            sends: 0,
            delivers: 0,
            applies: 0,
            buffered: 0,
            retransmits: 0,
            dwell_ns: StatAccum::default(),
            dwell_p99: P2Quantile::new(0.99),
            fetch_rtt_ns: StatAccum::default(),
        }
    }
}

impl SiteMetrics {
    /// Record one apply with its pending-queue dwell (mean + p99 together).
    pub fn record_dwell(&mut self, ns: f64) {
        self.dwell_ns.record(ns);
        self.dwell_p99.record(ns);
    }
}

/// The per-site registry: one [`SiteMetrics`] slot per site, indexed by
/// the site's dense index. Grows on demand so callers never have to know
/// `n` up front.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SiteRegistry {
    sites: Vec<SiteMetrics>,
}

impl SiteRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure slots exist for sites `0..n`.
    pub fn ensure(&mut self, n: usize) {
        if self.sites.len() < n {
            self.sites.resize_with(n, SiteMetrics::default);
        }
    }

    /// Number of site slots.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Mutable access to one site's slot, growing the registry if needed.
    pub fn site_mut(&mut self, index: usize) -> &mut SiteMetrics {
        self.ensure(index + 1);
        &mut self.sites[index]
    }

    /// Shared access to one site's slot, if registered.
    pub fn site(&self, index: usize) -> Option<&SiteMetrics> {
        self.sites.get(index)
    }

    /// Iterate the slots in site order.
    pub fn iter(&self) -> impl Iterator<Item = &SiteMetrics> {
        self.sites.iter()
    }

    /// Total buffered count across all sites.
    pub fn total_buffered(&self) -> u64 {
        self.sites.iter().map(|s| s.buffered).sum()
    }

    /// Fold another registry into this one, site by site. Counters add;
    /// `StatAccum`s fold as weighted mean contributions (same compromise
    /// as [`RunMetrics::merge`](crate::RunMetrics::merge)); P² states
    /// cannot merge and keep this registry's estimate.
    pub fn merge(&mut self, other: &SiteRegistry) {
        self.ensure(other.sites.len());
        for (mine, theirs) in self.sites.iter_mut().zip(&other.sites) {
            mine.sends += theirs.sends;
            mine.delivers += theirs.delivers;
            mine.applies += theirs.applies;
            mine.buffered += theirs.buffered;
            mine.retransmits += theirs.retransmits;
            for (m, t) in [
                (&mut mine.dwell_ns, &theirs.dwell_ns),
                (&mut mine.fetch_rtt_ns, &theirs.fetch_rtt_ns),
            ] {
                for _ in 0..t.count() {
                    m.record(t.mean());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_mut_grows_on_demand() {
        let mut r = SiteRegistry::new();
        assert!(r.is_empty());
        r.site_mut(3).sends = 7;
        assert_eq!(r.len(), 4);
        assert_eq!(r.site(3).unwrap().sends, 7);
        assert_eq!(r.site(0).unwrap().sends, 0);
        assert!(r.site(4).is_none());
    }

    #[test]
    fn ensure_never_shrinks() {
        let mut r = SiteRegistry::new();
        r.ensure(5);
        r.site_mut(2).buffered = 3;
        r.ensure(2);
        assert_eq!(r.len(), 5);
        assert_eq!(r.total_buffered(), 3);
    }

    #[test]
    fn dwell_records_mean_and_p99() {
        let mut s = SiteMetrics::default();
        for x in [10.0, 20.0, 30.0] {
            s.record_dwell(x);
        }
        assert_eq!(s.dwell_ns.count(), 3);
        assert!((s.dwell_ns.mean() - 20.0).abs() < 1e-9);
        // Exact small-sample path: p99 of three samples is the max.
        assert_eq!(s.dwell_p99.estimate(), Some(30.0));
    }

    #[test]
    fn merge_adds_counters_and_folds_accums() {
        let mut a = SiteRegistry::new();
        a.site_mut(0).sends = 2;
        a.site_mut(0).record_dwell(100.0);
        let mut b = SiteRegistry::new();
        b.site_mut(0).sends = 3;
        b.site_mut(0).retransmits = 1;
        b.site_mut(0).record_dwell(300.0);
        b.site_mut(1).delivers = 4;
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.site(0).unwrap().sends, 5);
        assert_eq!(a.site(0).unwrap().retransmits, 1);
        assert_eq!(a.site(0).unwrap().dwell_ns.count(), 2);
        assert!((a.site(0).unwrap().dwell_ns.mean() - 200.0).abs() < 1e-9);
        assert_eq!(a.site(1).unwrap().delivers, 4);
    }
}
