//! `simulate` — run one custom simulation and print its metrics.
//!
//! A user-facing front door to the simulator: pick a protocol, system size,
//! write rate, latency model and optional partition, and get the paper's
//! metrics (message counts and sizes per kind, apply latency, storage) plus
//! an optional consistency verification.
//!
//! ```text
//! simulate [--protocol full-track|opt-track|opt-track-crp|optp|hb-track]
//!          [--n <sites>] [--w <write-rate>] [--q <variables>]
//!          [--events <per-process>] [--seed <u64>] [--p <replicas>]
//!          [--latency <const_us|min_us:max_us>] [--partition <start_ms:end_ms>]
//!          [--zipf <theta>] [--wire-model] [--check]
//!          [--faults <drop,dup>] [--crash <site:start_ms:end_ms[:media]>]
//!          [--wal] [--checkpoint-interval <ms>] [--fetch-deadline <ms>]
//!          [--churn <spec>]
//!          [--stability] [--stability-heartbeat <ms>] [--no-gc]
//!          [--overdue-after <ms>] [--soft-meta-cap <bytes>]
//!          [--dump-schedule <path>] [--schedule <path>]
//!          [--seeds <k>] [--jobs <n>]
//!          [--trace <path>] [--verify-trace]
//!          [--runtime channel|tcp]
//! ```
//!
//! `--seeds 8` runs eight simulations (seeds `seed .. seed+7`) and prints
//! one summary line per seed plus seed-averaged message statistics;
//! `--jobs 4` spreads those runs over four worker threads. The per-seed
//! results are printed in seed order, so the output does not depend on
//! the job count.
//!
//! `--dump-schedule` writes the generated operation trace as CSV;
//! `--schedule` replays a previously dumped (or hand-written) trace.
//!
//! `--faults 0.2,0.05` makes every channel drop 20 % and duplicate 5 % of
//! transport frames; `--crash 3:500:900` fail-stops site 3 (with state
//! loss) from 500 ms to 900 ms. Either flag engages the reliable-delivery
//! transport and prints its counters (retransmissions, duplicate drops,
//! ack/sync traffic, recovery time). Crash windows of different sites may
//! overlap (a correlated failure); windows of one site must not.
//!
//! `--wal` gives every site a durable write-ahead log, so recovery replays
//! local state and asks peers only for the delta; `--checkpoint-interval
//! 250` snapshots each live site's protocol state every 250 ms of virtual
//! time and truncates its log. A trailing `:media` on `--crash` destroys
//! that site's durable medium too (recovery falls back to the full peer
//! rebuild). `--fetch-deadline 150` makes a blocked remote read fail over
//! to the next replica after 150 ms instead of waiting indefinitely, and
//! give up as a degraded read once the candidates are exhausted.
//!
//! `--churn "join:5@2s;migrate:12:4->5@4s;leave:1@6s"` runs the simulation
//! under dynamic membership: each `;`-separated event proposes a view
//! change (`join:SITE@TIME`, `leave:SITE@TIME`, `crash-leave:SITE@TIME`,
//! `migrate:VAR:FROM->TO@TIME`) that quiesces and installs at an epoch
//! boundary. Sites that join later start outside the view and bootstrap by
//! state transfer. The plan is validated before the run (ids in range, a
//! join precedes its leave, migrations target members) and a bad plan
//! exits 2 with the offending event named.
//!
//! `--stability` turns on causal-stability tracking: sites gossip
//! per-origin delivery watermarks (piggybacked on app messages plus a
//! heartbeat, default every 50 ms of virtual time — tune it with
//! `--stability-heartbeat`), a Last-Stable-Vector frontier advances behind
//! the slowest member, and everything at or below it is garbage-collected
//! (protocol logs, `LastWriteOn` slots, stable WAL segments). `--no-gc`
//! keeps the tracker but disables the collectors — the measurement-only
//! baseline. `--overdue-after 5000` reports any update buffered longer
//! than 5 s (`buffered_overdue`); `--soft-meta-cap 500000` defers writers
//! while retained metadata exceeds 500 KB. The three tuning flags require
//! `--stability`.
//!
//! `--trace out.jsonl` records a structured event trace (one JSON object
//! per line, stamped with virtual time — see `docs/OBSERVABILITY.md`) and
//! writes it atomically at the end of the run. `--verify-trace`
//! reconstructs the execution history purely from the trace's
//! write/apply/read events and runs the causal-consistency checker on the
//! reconstruction — an end-to-end self-test that the trace is complete and
//! correctly ordered. Both operate on one concrete run, so they are
//! incompatible with `--seeds > 1`.

//! `--runtime channel|tcp` runs the same configured cell on the *threaded
//! runtime* instead of the simulator: real OS threads, real (or loopback
//! TCP) message passing, wall-clock schedule replay with the simulator's
//! warm-up attribution — so its counters are directly comparable to the
//! simulated run of the same seed (`repro serve` asserts that parity
//! systematically). Simulator-only features (faults, crashes, durability,
//! churn, stability, partitions, traces, schedule files, multi-seed) are
//! rejected in runtime mode.

use causal_checker::check;
use causal_clocks::DestSet;
use causal_experiments::trace::{check_trace, write_trace};
use causal_memory::{Placement, PlacementKind};
use causal_obs::BufTracer;
use causal_proto::ProtocolKind;
use causal_simnet::{
    run, run_traced, CrashWindow, DurabilityPlan, FaultPlan, LatencyModel, PartitionWindow,
    SimConfig, StabilityPlan,
};
use causal_types::{MsgKind, SimDuration, SimTime, SiteId, SizeModel};
use causal_workload::VarDistribution;
use std::sync::Arc;

struct Args {
    protocol: ProtocolKind,
    n: usize,
    w: f64,
    q: usize,
    events: usize,
    seed: u64,
    p: Option<usize>,
    latency: LatencyModel,
    partition: Option<(u64, u64)>,
    zipf: Option<f64>,
    wire_model: bool,
    check: bool,
    faults: Option<(f64, f64)>,
    crashes: Vec<(usize, u64, u64, bool)>,
    wal: bool,
    checkpoint_interval: Option<u64>,
    fetch_deadline: Option<u64>,
    dump_schedule: Option<String>,
    schedule: Option<String>,
    churn: Option<String>,
    stability: bool,
    stability_heartbeat: Option<u64>,
    no_gc: bool,
    overdue_after: Option<u64>,
    soft_meta_cap: Option<u64>,
    seeds: usize,
    jobs: usize,
    trace: Option<String>,
    verify_trace: bool,
    runtime: Option<String>,
}

fn parse() -> Args {
    let mut a = Args {
        protocol: ProtocolKind::OptTrack,
        n: 10,
        w: 0.5,
        q: 100,
        events: 200,
        seed: 1,
        p: None,
        latency: LatencyModel::default_wan(),
        partition: None,
        zipf: None,
        wire_model: false,
        check: false,
        faults: None,
        crashes: Vec::new(),
        wal: false,
        checkpoint_interval: None,
        fetch_deadline: None,
        dump_schedule: None,
        schedule: None,
        churn: None,
        stability: false,
        stability_heartbeat: None,
        no_gc: false,
        overdue_after: None,
        soft_meta_cap: None,
        seeds: 1,
        jobs: 1,
        trace: None,
        verify_trace: false,
        runtime: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| die(&format!("missing value for {flag}")))
                .clone()
        };
        match flag.as_str() {
            "--protocol" => {
                a.protocol = match val().as_str() {
                    "full-track" => ProtocolKind::FullTrack,
                    "opt-track" => ProtocolKind::OptTrack,
                    "opt-track-crp" => ProtocolKind::OptTrackCrp,
                    "optp" => ProtocolKind::OptP,
                    "hb-track" => ProtocolKind::HbTrack,
                    other => die(&format!("unknown protocol {other}")),
                }
            }
            "--n" => a.n = val().parse().unwrap_or_else(|_| die("bad --n")),
            "--w" => a.w = val().parse().unwrap_or_else(|_| die("bad --w")),
            "--q" => a.q = val().parse().unwrap_or_else(|_| die("bad --q")),
            "--events" => a.events = val().parse().unwrap_or_else(|_| die("bad --events")),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| die("bad --seed")),
            "--p" => a.p = Some(val().parse().unwrap_or_else(|_| die("bad --p"))),
            "--latency" => {
                let v = val();
                a.latency = if let Some((lo, hi)) = v.split_once(':') {
                    LatencyModel::Uniform {
                        min_micros: lo.parse().unwrap_or_else(|_| die("bad --latency")),
                        max_micros: hi.parse().unwrap_or_else(|_| die("bad --latency")),
                    }
                } else {
                    LatencyModel::Constant {
                        micros: v.parse().unwrap_or_else(|_| die("bad --latency")),
                    }
                };
            }
            "--partition" => {
                let v = val();
                let (s, e) = v.split_once(':').unwrap_or_else(|| die("bad --partition"));
                a.partition = Some((
                    s.parse().unwrap_or_else(|_| die("bad --partition")),
                    e.parse().unwrap_or_else(|_| die("bad --partition")),
                ));
            }
            "--zipf" => a.zipf = Some(val().parse().unwrap_or_else(|_| die("bad --zipf"))),
            "--faults" => {
                let v = val();
                let (d, u) = v.split_once(',').unwrap_or((v.as_str(), "0"));
                a.faults = Some((
                    d.parse().unwrap_or_else(|_| die("bad --faults")),
                    u.parse().unwrap_or_else(|_| die("bad --faults")),
                ));
            }
            "--crash" => {
                let v = val();
                let parts: Vec<&str> = v.split(':').collect();
                let (site, start, end, media) = match parts[..] {
                    [site, start, end] => (site, start, end, false),
                    [site, start, end, "media"] => (site, start, end, true),
                    _ => die("bad --crash (want site:start_ms:end_ms[:media])"),
                };
                a.crashes.push((
                    site.parse().unwrap_or_else(|_| die("bad --crash site")),
                    start.parse().unwrap_or_else(|_| die("bad --crash start")),
                    end.parse().unwrap_or_else(|_| die("bad --crash end")),
                    media,
                ));
            }
            "--wal" => a.wal = true,
            "--checkpoint-interval" => {
                a.checkpoint_interval = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| die("bad --checkpoint-interval (want milliseconds)")),
                )
            }
            "--fetch-deadline" => {
                a.fetch_deadline = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| die("bad --fetch-deadline (want milliseconds)")),
                )
            }
            "--seeds" => {
                a.seeds = val().parse().unwrap_or_else(|_| die("bad --seeds"));
                if a.seeds == 0 {
                    die("--seeds must be at least 1");
                }
            }
            "--jobs" => {
                a.jobs = val().parse().unwrap_or_else(|_| die("bad --jobs"));
                if a.jobs == 0 {
                    die("--jobs must be at least 1");
                }
            }
            "--wire-model" => a.wire_model = true,
            "--check" => a.check = true,
            "--trace" => a.trace = Some(val()),
            "--verify-trace" => a.verify_trace = true,
            "--runtime" => {
                let v = val();
                match v.as_str() {
                    "channel" | "tcp" => a.runtime = Some(v),
                    other => die(&format!("unknown runtime {other} (channel|tcp)")),
                }
            }
            "--churn" => a.churn = Some(val()),
            "--stability" => a.stability = true,
            "--stability-heartbeat" => {
                a.stability_heartbeat = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| die("bad --stability-heartbeat (want milliseconds)")),
                );
            }
            "--no-gc" => a.no_gc = true,
            "--overdue-after" => {
                a.overdue_after = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| die("bad --overdue-after (want milliseconds)")),
                );
            }
            "--soft-meta-cap" => {
                a.soft_meta_cap = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| die("bad --soft-meta-cap (want bytes)")),
                );
            }
            "--dump-schedule" => a.dump_schedule = Some(val()),
            "--schedule" => a.schedule = Some(val()),
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of simulate.rs");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    validate(&a);
    a
}

/// Cross-flag sanity checks, each with a message naming the fix.
fn validate(a: &Args) {
    if a.seeds > 1 && (a.check || a.dump_schedule.is_some() || a.schedule.is_some()) {
        die("--seeds > 1 is incompatible with --check / --dump-schedule / --schedule (those operate on one concrete run; drop --seeds or run them per seed)");
    }
    if a.seeds > 1 && (a.trace.is_some() || a.verify_trace) {
        die("--seeds > 1 is incompatible with --trace / --verify-trace (a trace records one concrete run; drop --seeds or trace each seed separately)");
    }
    if a.checkpoint_interval == Some(0) {
        die("--checkpoint-interval must be positive (0 would checkpoint never-endingly at t=0; omit the flag to disable checkpoints)");
    }
    if a.checkpoint_interval.is_some() && !a.wal {
        die("--checkpoint-interval requires --wal (checkpoints live in the write-ahead log's durable store)");
    }
    if a.crashes.iter().any(|c| c.3) && !a.wal {
        die("--crash ...:media requires --wal (without a durable medium there is nothing to lose)");
    }
    if a.stability_heartbeat == Some(0) {
        die("--stability-heartbeat must be positive");
    }
    if !a.stability {
        if a.stability_heartbeat.is_some() {
            die("--stability-heartbeat requires --stability");
        }
        if a.no_gc {
            die("--no-gc requires --stability (there is no collector to disable)");
        }
        if a.overdue_after.is_some() {
            die("--overdue-after requires --stability (the watchdog runs on its tick)");
        }
        if a.soft_meta_cap.is_some() {
            die("--soft-meta-cap requires --stability (backpressure reads its retained gauge)");
        }
    }
    let mut windows = a.crashes.clone();
    windows.sort_by_key(|&(site, start, _, _)| (site, start));
    for w in windows.windows(2) {
        let (s0, a0, b0, _) = w[0];
        let (s1, a1, _, _) = w[1];
        if s0 == s1 && a1 < b0 {
            die(&format!(
                "--crash windows on site {s0} overlap ({a0}:{b0} vs {a1}:..): \
                 a site cannot crash while already down; merge the windows or move one"
            ));
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// `--seeds k`: run the configured simulation for `k` consecutive seeds on
/// the worker pool and print per-seed lines (in seed order) plus
/// seed-averaged message statistics.
fn multi_seed(a: &Args, cfg: &SimConfig) {
    use causal_experiments::pool;
    use causal_metrics::MessageStats;

    let t0 = std::time::Instant::now();
    let runs = pool::run_indexed(a.jobs, a.seeds, |i| {
        let mut c = cfg.clone();
        c.workload.seed = a.seed + i as u64;
        let r = run(&c);
        assert_eq!(r.final_pending, 0, "simulation must reach quiescence");
        r
    });
    println!("protocol        {}", a.protocol);
    println!(
        "seeds           {}..{} on {} worker(s)",
        a.seed,
        a.seed + a.seeds as u64 - 1,
        a.jobs
    );
    println!("wall time       {:.2?}", t0.elapsed());
    println!();
    let mut agg = MessageStats::new();
    for (i, r) in runs.iter().enumerate() {
        let m = &r.metrics;
        println!(
            "seed {:<6} {:>8} msgs  {:>10.1} KB meta  apply {:>7.2} ms  vtime {}",
            a.seed + i as u64,
            m.measured.total_count(),
            m.measured.total_bytes() as f64 / 1000.0,
            m.apply_latency_ns.mean() / 1e6,
            r.duration
        );
        agg.merge(&m.measured);
    }
    println!();
    let sf = a.seeds as f64;
    for kind in [MsgKind::Sm, MsgKind::Fm, MsgKind::Rm] {
        if agg.count(kind) > 0 {
            println!(
                "{kind} mean/seed    {:>10.1} msgs   avg meta {:>8.1} B   total {:>10.1} KB",
                agg.count(kind) as f64 / sf,
                agg.avg_bytes(kind).unwrap_or(0.0),
                agg.bytes(kind) as f64 / sf / 1000.0
            );
        }
    }
}

/// `--runtime` mode: replay the configured cell on the threaded runtime
/// (real threads, channel or loopback-TCP transport) and print its
/// counters in the same shape as the simulated run.
fn run_on_runtime(a: &Args, which: &str) {
    let sim_only = [
        (a.partition.is_some(), "--partition"),
        (a.faults.is_some(), "--faults"),
        (!a.crashes.is_empty(), "--crash"),
        (a.wal, "--wal"),
        (a.checkpoint_interval.is_some(), "--checkpoint-interval"),
        (a.fetch_deadline.is_some(), "--fetch-deadline"),
        (a.churn.is_some(), "--churn"),
        (a.stability, "--stability"),
        (a.schedule.is_some(), "--schedule"),
        (a.trace.is_some(), "--trace"),
        (a.verify_trace, "--verify-trace"),
        (a.seeds > 1, "--seeds"),
    ];
    for (set, flag) in sim_only {
        if set {
            die(&format!(
                "{flag} is simulator-only (incompatible with --runtime)"
            ));
        }
    }
    let placement = if a.protocol.supports_partial() {
        let p = a.p.unwrap_or(((0.3 * a.n as f64).round() as usize).max(1));
        Placement::new(PlacementKind::Even, a.n, p).unwrap_or_else(|e| die(&e.to_string()))
    } else {
        Placement::full(a.n).unwrap_or_else(|e| die(&e.to_string()))
    };
    let mut workload = causal_workload::WorkloadParams::paper(a.n, a.w, a.seed);
    workload.q = a.q;
    workload.events_per_process = a.events;
    if let Some(theta) = a.zipf {
        workload.var_dist = VarDistribution::Zipf { theta };
    }
    let cfg = causal_runtime::RuntimeConfig {
        protocol: a.protocol,
        placement: Arc::new(placement),
        workload,
        time_scale: 0.005,
        size_model: if a.wire_model {
            SizeModel::wire()
        } else {
            SizeModel::java_like()
        },
        batch: None,
        workers: 0,
    };
    let t0 = std::time::Instant::now();
    let out = match which {
        "channel" => causal_runtime::run_threaded(&cfg),
        "tcp" => causal_runtime::run_tcp(&cfg).unwrap_or_else(|e| die(&format!("{e:?}"))),
        _ => unreachable!("validated in parse"),
    };
    let m = &out.metrics;
    println!("protocol        {} (runtime: {which})", a.protocol);
    println!(
        "workload        {} events/proc, w_rate {}, seed {}, time scale 0.005",
        a.events, a.w, a.seed
    );
    println!(
        "wall time       {:.2?} (total {:.2?})",
        out.elapsed,
        t0.elapsed()
    );
    println!();
    println!(
        "measured ops    {} writes, {} reads ({} remote)",
        m.writes, m.reads, m.remote_reads
    );
    for kind in [MsgKind::Sm, MsgKind::Fm, MsgKind::Rm] {
        let c = m.measured.count(kind);
        if c > 0 {
            println!(
                "{kind} messages     {c:>8}   avg meta {:>8.1} B   total {:>10.1} KB",
                m.measured.avg_bytes(kind).unwrap_or(0.0),
                m.measured.bytes(kind) as f64 / 1000.0,
            );
        }
    }
    println!(
        "applies         {} (max parked {}, {} degraded reads, {} conn errors)",
        m.applies, m.max_pending, m.degraded_reads, m.transport_conn_errors
    );
    if out.final_pending != 0 {
        die(&format!("{} updates left parked", out.final_pending));
    }
    if a.check {
        let v = check(&out.history);
        if v.protocol_clean() {
            println!("consistency     causal: OK (runtime execution verified)");
        } else {
            println!("consistency     VIOLATIONS: {:?}", v.examples);
            std::process::exit(1);
        }
    }
}

fn main() {
    let a = parse();
    if let Some(which) = a.runtime.clone() {
        run_on_runtime(&a, &which);
        return;
    }
    let placement = if a.protocol.supports_partial() {
        let p = a.p.unwrap_or(((0.3 * a.n as f64).round() as usize).max(1));
        Placement::new(PlacementKind::Even, a.n, p).unwrap_or_else(|e| die(&e.to_string()))
    } else {
        Placement::full(a.n).unwrap_or_else(|e| die(&e.to_string()))
    };
    let mut cfg = SimConfig {
        protocol: a.protocol,
        placement: Arc::new(placement),
        workload: causal_workload::WorkloadParams::paper(a.n, a.w, a.seed),
        latency: a.latency,
        size_model: if a.wire_model {
            SizeModel::wire()
        } else {
            SizeModel::java_like()
        },
        prune: Default::default(),
        record_history: a.check,
        partitions: Vec::new(),
        schedule_override: None,
        pauses: Vec::new(),
        faults: match a.faults {
            Some((drop, dup)) => FaultPlan::uniform(drop, dup),
            None => FaultPlan::default(),
        },
        crashes: a
            .crashes
            .iter()
            .map(|&(site, s, e, _)| {
                if site >= a.n {
                    die(&format!("--crash site {site} out of range (n={})", a.n));
                }
                if s >= e {
                    die(&format!("--crash window {s}:{e} is empty"));
                }
                CrashWindow {
                    site: SiteId::from(site),
                    start: SimTime::from_millis(s),
                    end: SimTime::from_millis(e),
                }
            })
            .collect(),
        durability: DurabilityPlan {
            wal: a.wal,
            checkpoint_every: a.checkpoint_interval.map(SimDuration::from_millis),
            fetch_deadline: a.fetch_deadline.map(SimDuration::from_millis),
            lose_media: a
                .crashes
                .iter()
                .filter(|c| c.3)
                .map(|c| SiteId::from(c.0))
                .collect(),
            torn_tail: Vec::new(),
        },
        churn: None,
        stability: None,
        batching: None,
    };
    cfg.workload.q = a.q;
    cfg.workload.events_per_process = a.events;
    if let Some(spec) = &a.churn {
        let plan = causal_workload::ChurnPlan::parse(spec).unwrap_or_else(|e| die(&e.to_string()));
        plan.validate(a.n, a.q)
            .unwrap_or_else(|e| die(&e.to_string()));
        cfg.churn = Some(plan);
    }
    if let Some(theta) = a.zipf {
        cfg.workload.var_dist = VarDistribution::Zipf { theta };
    }
    if a.stability {
        let mut plan = StabilityPlan::default();
        if let Some(ms) = a.stability_heartbeat {
            plan.heartbeat_every = SimDuration::from_millis(ms);
        }
        if a.no_gc {
            plan = plan.without_gc();
        }
        if let Some(ms) = a.overdue_after {
            plan = plan.with_overdue_after(SimDuration::from_millis(ms));
        }
        if let Some(bytes) = a.soft_meta_cap {
            plan = plan.with_soft_meta_cap(bytes);
        }
        cfg.stability = Some(plan);
    }
    if let Some(path) = &a.schedule {
        let csv = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        let sched = causal_workload::schedule_from_csv(&csv, cfg.workload)
            .unwrap_or_else(|e| die(&e.to_string()));
        cfg.schedule_override = Some(sched);
    }
    if let Some(path) = &a.dump_schedule {
        let sched = cfg
            .schedule_override
            .clone()
            .unwrap_or_else(|| causal_workload::generate(&cfg.workload));
        std::fs::write(path, causal_workload::schedule_to_csv(&sched))
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("wrote schedule to {path}");
    }
    if let Some((s, e)) = a.partition {
        cfg.partitions.push(PartitionWindow {
            start: SimTime::from_millis(s),
            end: SimTime::from_millis(e),
            side_a: DestSet::from_sites((0..a.n / 2).map(SiteId::from)),
        });
    }

    if a.seeds > 1 {
        multi_seed(&a, &cfg);
        return;
    }

    let tracing = a.trace.is_some() || a.verify_trace;
    let t0 = std::time::Instant::now();
    let mut tracer = BufTracer::default();
    let r = if tracing {
        run_traced(&cfg, &mut tracer)
    } else {
        run(&cfg)
    };
    let m = &r.metrics;

    println!("protocol        {}", a.protocol);
    println!(
        "system          n={} q={} p={}",
        a.n,
        a.q,
        if a.protocol.supports_partial() {
            a.p.unwrap_or(((0.3 * a.n as f64).round() as usize).max(1))
        } else {
            a.n
        }
    );
    println!(
        "workload        {} events/proc, w_rate {}, seed {}",
        a.events, a.w, a.seed
    );
    println!("virtual time    {}", r.duration);
    println!("wall time       {:.2?}", t0.elapsed());
    println!();
    println!(
        "measured ops    {} writes, {} reads ({} remote)",
        m.writes, m.reads, m.remote_reads
    );
    for kind in [MsgKind::Sm, MsgKind::Fm, MsgKind::Rm] {
        let c = m.measured.count(kind);
        if c > 0 {
            println!(
                "{kind} messages     {c:>8}   avg meta {:>8.1} B   total {:>10.1} KB",
                m.measured.avg_bytes(kind).unwrap_or(0.0),
                m.measured.bytes(kind) as f64 / 1000.0,
            );
        }
    }
    println!(
        "applies         {} (max parked {}, mean buffered apply latency {:.2} ms)",
        m.applies,
        m.max_pending,
        m.apply_latency_ns.mean() / 1e6
    );
    let storage: u64 = r.final_local_meta.iter().sum();
    println!(
        "storage         {:.1} KB metadata across sites at quiescence",
        storage as f64 / 1000.0
    );
    if cfg.chaos() {
        println!();
        println!(
            "transport       {} retransmissions, {} dup drops, {} fault drops, {} fault dups",
            m.retransmissions, m.dup_drops, m.fault_drops, m.fault_dups
        );
        println!(
            "                {} acks ({:.1} KB), envelopes {:.1} KB, {} crash drops",
            m.ack_count,
            m.ack_bytes as f64 / 1000.0,
            m.envelope_bytes as f64 / 1000.0,
            m.crash_drops
        );
        if m.sync_count > 0 {
            println!(
                "recovery        {} sync frames ({:.1} KB), mean recovery {:.2} ms",
                m.sync_count,
                m.sync_bytes as f64 / 1000.0,
                m.recovery_ns.mean() / 1e6
            );
        }
        if a.wal {
            println!(
                "durability      {} WAL appends ({:.1} KB), {} checkpoints ({:.1} KB)",
                m.wal_appends,
                m.wal_bytes as f64 / 1000.0,
                m.checkpoints,
                m.checkpoint_bytes as f64 / 1000.0,
            );
            println!(
                "                {} local replays, {:.1} KB delta-sync savings",
                m.recovery_replays,
                m.delta_sync_saved_bytes as f64 / 1000.0,
            );
        }
        if m.fetch_failovers + m.degraded_reads + m.degraded_recoveries > 0 {
            println!(
                "degradation     {} fetch failovers, {} degraded reads, {} degraded recoveries",
                m.fetch_failovers, m.degraded_reads, m.degraded_recoveries
            );
        }
        if cfg.churn.is_some() {
            println!(
                "membership      {} view changes ({} forced), {} joins, {} leaves, {} migrations",
                m.view_changes, m.views_forced, m.joins, m.leaves, m.migrations
            );
            println!(
                "                transfer {:.1} KB ({} degraded), mean view change {:.2} ms",
                m.churn_transfer_bytes as f64 / 1000.0,
                m.churn_transfers_degraded,
                m.view_change_ns.mean() / 1e6
            );
        }
    }
    if a.stability {
        println!();
        let p99 = m
            .stability_lag_p99
            .estimate()
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        println!(
            "stability       lag mean {:.1} / p99 {} writes, unstable peak {}, retained peak {:.1} KB",
            m.stability_lag.mean(),
            p99,
            m.unstable_peak,
            m.retained_meta_peak as f64 / 1000.0,
        );
        println!(
            "                gossip {} rows ({:.1} KB), gc {} log entries + {} slots, {} stalled ticks",
            m.gossip_rows,
            m.gossip_bytes as f64 / 1000.0,
            m.gc_log_entries,
            m.gc_slots,
            m.gc_stalled_ticks,
        );
        if a.wal {
            println!(
                "                wal {} segments sealed, {:.1} KB deleted behind the frontier",
                m.wal_segments_sealed,
                m.wal_deleted_bytes as f64 / 1000.0,
            );
        }
        if m.buffered_overdue + m.backpressure_events > 0 {
            println!(
                "                {} overdue buffered updates, {} backpressure deferrals",
                m.buffered_overdue, m.backpressure_events,
            );
        }
    }
    assert_eq!(r.final_pending, 0, "simulation must reach quiescence");

    if tracing {
        println!();
        println!("trace           {} events recorded", tracer.events.len());
    }
    if let Some(path) = &a.trace {
        write_trace(std::path::Path::new(path), &tracer.events)
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        println!("                written to {path}");
    }
    if a.verify_trace {
        let v = check_trace(&tracer.events, a.n);
        if v.protocol_clean() {
            println!("                reconstructed causal chains pass the checker ✓");
        } else {
            println!("                TRACE RECONSTRUCTION VIOLATIONS ✗");
            for e in &v.examples {
                println!("    {e}");
            }
            std::process::exit(1);
        }
    }

    if a.check {
        let v = check(r.history.as_ref().expect("recorded"));
        println!();
        println!(
            "consistency     fifo={} delivery={} reads_from={} stale_reads={} own_write_races={}",
            v.fifo, v.delivery, v.reads_from, v.stale_reads, v.own_write_races
        );
        if v.protocol_clean() {
            println!("verdict         causally consistent ✓");
        } else {
            println!("verdict         VIOLATIONS FOUND ✗");
            for e in &v.examples {
                println!("    {e}");
            }
            std::process::exit(1);
        }
    }
}
