//! One site's thread: schedule replay + message service.

use causal_checker::History;
use causal_metrics::RunMetrics;
use causal_proto::{Effect, Msg, ProtocolSite, ReadResult};
use causal_types::WriteId;
use causal_types::{MetaSized, OpKind, ScheduledOp, SiteId, SizeModel};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a node's outgoing messages reach their destination. The node logic
/// is transport-agnostic: in-process runs use [`ChannelTransport`]
/// (crossbeam channels), the TCP runner in [`crate::tcp`] moves the same
/// frames over loopback sockets — the paper's actual transport.
pub trait Transport: Send + Sync {
    /// Deliver `msg` from `from` to `to`'s inbox, reliably and in FIFO
    /// order per ordered pair.
    fn send(&self, from: SiteId, to: SiteId, msg: &Msg);
}

/// Crossbeam-channel transport: one unbounded channel per site.
pub struct ChannelTransport {
    /// Senders indexed by destination site.
    pub peers: Vec<Sender<Wire>>,
}

impl Transport for ChannelTransport {
    fn send(&self, from: SiteId, to: SiteId, msg: &Msg) {
        self.peers[to.index()]
            .send(Wire::Msg {
                from,
                msg: msg.clone(),
            })
            .expect("peer thread alive until Stop");
    }
}

/// What travels between site threads.
pub enum Wire {
    /// A protocol message from a peer.
    Msg {
        /// The sending site.
        from: SiteId,
        /// The payload.
        msg: Msg,
    },
    /// Coordinator broadcast: drain and exit.
    Stop,
}

/// What a site thread hands back to the coordinator when it stops.
pub struct NodeOutcome {
    /// The site's recorded execution fragment (own ops + own applies).
    pub history: History,
    /// Messages this site *sent*, with meta-data byte totals.
    pub metrics: RunMetrics,
    /// Updates still parked at shutdown (must be 0).
    pub final_pending: usize,
}

/// Everything one site thread needs.
pub struct Node {
    /// This site's id.
    pub site: SiteId,
    /// The protocol state machine.
    pub proto: Box<dyn ProtocolSite>,
    /// The site's pre-generated schedule.
    pub schedule: Vec<ScheduledOp>,
    /// Virtual-to-wall-clock scale (e.g. 0.01 replays a 2 s gap in 20 ms).
    pub time_scale: f64,
    /// Number of sites in the system.
    pub n: usize,
    /// Outgoing message path.
    pub transport: Arc<dyn Transport>,
    /// This site's inbox (fed by the transport's receiving side and by the
    /// coordinator's `Stop`).
    pub inbox: Receiver<Wire>,
    /// Global in-flight message counter (incremented before send,
    /// decremented after the receiver processed the message).
    pub in_flight: Arc<AtomicI64>,
    /// Byte-accounting model for the sent-message metrics.
    pub size_model: SizeModel,
    /// Invoked exactly once, when the last scheduled operation has been
    /// issued (the node keeps serving messages afterwards). The coordinator
    /// uses this for quiescence detection.
    pub on_schedule_done: Option<Box<dyn FnOnce() + Send>>,
    /// Receipt instants of parked/received updates, for the apply-latency
    /// metric. Managed internally; leave empty at construction.
    pub receipt: HashMap<WriteId, Instant>,
}

impl Node {
    /// Run the node to completion: replay the schedule while serving
    /// incoming messages, then keep serving until `Stop`.
    pub fn run(mut self) -> NodeOutcome {
        let n = self.n;
        let mut history = History::new(n);
        let mut metrics = RunMetrics::new();
        let start = Instant::now();
        let mut next_op = 0usize;
        debug_assert!(self.receipt.is_empty());

        loop {
            // When is the next scheduled operation due (wall clock)?
            let due = self.schedule.get(next_op).map(|op| {
                let virt = op.at.as_nanos() as f64 * self.time_scale;
                Duration::from_nanos(virt as u64)
            });

            match due {
                Some(due) => {
                    let now = start.elapsed();
                    if now >= due {
                        let op = self.schedule[next_op];
                        next_op += 1;
                        self.issue(op, &mut history, &mut metrics);
                    } else {
                        // Serve messages until the op is due.
                        match self.inbox.recv_timeout(due - now) {
                            Ok(Wire::Msg { from, msg }) => {
                                self.deliver(from, msg, &mut history, &mut metrics)
                            }
                            Ok(Wire::Stop) => break,
                            Err(_) => {} // timeout: loop issues the op
                        }
                    }
                }
                None => {
                    if let Some(done) = self.on_schedule_done.take() {
                        done();
                    }
                    match self.inbox.recv() {
                        Ok(Wire::Msg { from, msg }) => {
                            self.deliver(from, msg, &mut history, &mut metrics)
                        }
                        Ok(Wire::Stop) | Err(_) => break,
                    }
                }
            }
        }

        NodeOutcome {
            history,
            metrics,
            final_pending: self.proto.pending_len(),
        }
    }

    fn issue(&mut self, op: ScheduledOp, history: &mut History, metrics: &mut RunMetrics) {
        match op.kind {
            OpKind::Write { var, data } => {
                metrics.record_op(true, false);
                let (wid, effects) = self.proto.write(var, data, 0);
                history.record_write(self.site, wid, var);
                self.route(effects, history, metrics);
            }
            OpKind::Read { var } => match self.proto.read(var) {
                ReadResult::Local(v) => {
                    metrics.record_op(false, false);
                    history.record_read(self.site, var, v.map(|x| x.writer), self.site);
                }
                ReadResult::Fetch { target, msg } => {
                    metrics.record_op(false, true);
                    metrics.record_msg(msg.kind(), msg.meta_size(&self.size_model), true);
                    self.send(target, msg);
                    // Block until the fetch returns, serving (and thereby
                    // unblocking) other messages meanwhile — the paper's
                    // synchronous RemoteFetch.
                    loop {
                        match self.inbox.recv() {
                            Ok(Wire::Msg { from, msg }) => {
                                let done =
                                    self.deliver_watch_fetch(from, msg, history, metrics, var);
                                if done {
                                    break;
                                }
                            }
                            Ok(Wire::Stop) | Err(_) => {
                                panic!("runtime stopped while a fetch was outstanding")
                            }
                        }
                    }
                }
            },
        }
    }

    fn send(&self, to: SiteId, msg: Msg) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.transport.send(self.site, to, &msg);
    }

    fn deliver(&mut self, from: SiteId, msg: Msg, history: &mut History, metrics: &mut RunMetrics) {
        if let Msg::Sm(sm) = &msg {
            self.receipt.insert(sm.value.writer, Instant::now());
        }
        let effects = self.proto.on_message(from, msg);
        // Cascade sends must be counted before this message is released,
        // or the coordinator could observe a spurious in-flight zero.
        self.handle_effects(effects, history, metrics);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Like [`Node::deliver`], but reports whether the effects completed the
    /// outstanding fetch of `watch_var`.
    fn deliver_watch_fetch(
        &mut self,
        from: SiteId,
        msg: Msg,
        history: &mut History,
        metrics: &mut RunMetrics,
        watch_var: causal_types::VarId,
    ) -> bool {
        if let Msg::Sm(sm) = &msg {
            self.receipt.insert(sm.value.writer, Instant::now());
        }
        let effects = self.proto.on_message(from, msg);
        let mut done = false;
        for e in &effects {
            if let Effect::FetchDone { var, .. } = e {
                assert_eq!(*var, watch_var);
                done = true;
            }
        }
        self.handle_effects(effects, history, metrics);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        done
    }

    fn route(&mut self, effects: Vec<Effect>, history: &mut History, metrics: &mut RunMetrics) {
        self.handle_effects(effects, history, metrics);
    }

    fn handle_effects(
        &mut self,
        effects: Vec<Effect>,
        history: &mut History,
        metrics: &mut RunMetrics,
    ) {
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    metrics.record_msg(msg.kind(), msg.meta_size(&self.size_model), true);
                    self.send(to, msg);
                }
                Effect::Applied { var: _, write } => {
                    metrics.applies += 1;
                    if let Some(t0) = self.receipt.remove(&write) {
                        metrics.record_apply_latency(t0.elapsed().as_nanos() as f64);
                    }
                    history.record_apply(self.site, write);
                }
                Effect::FetchDone { var, value } => {
                    // Recorded here; completion detection happens in
                    // deliver_watch_fetch.
                    let served_by = value.map(|v| v.writer.site).unwrap_or(self.site);
                    let _ = served_by;
                    history.record_read(self.site, var, value.map(|x| x.writer), self.site);
                }
            }
        }
    }
}
