//! Structured-trace correctness: tracing must observe the run without
//! perturbing it, cover the causally significant transitions, and survive a
//! JSONL round trip.

use causal_obs::{parse_jsonl, to_jsonl, BufTracer, EventKind};
use causal_proto::ProtocolKind;
use causal_simnet::{run, run_traced, CrashWindow, DurabilityPlan, FaultPlan, SimConfig};
use causal_types::{SimDuration, SimTime, SiteId};

fn traced(cfg: &SimConfig) -> (causal_simnet::SimResult, BufTracer) {
    let mut tracer = BufTracer::default();
    let r = run_traced(cfg, &mut tracer);
    (r, tracer)
}

#[test]
fn tracing_does_not_perturb_the_run() {
    for (kind, partial) in [
        (ProtocolKind::FullTrack, true),
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::OptP, false),
    ] {
        let cfg = if partial {
            SimConfig::paper_partial(kind, 6, 0.5, 7)
        } else {
            SimConfig::paper_full(kind, 6, 0.5, 7)
        }
        .small()
        .with_history();
        let base = run(&cfg);
        let (tr, tracer) = traced(&cfg);
        assert!(!tracer.events.is_empty(), "{kind}: empty trace");
        assert_eq!(base.duration, tr.duration, "{kind}: duration diverged");
        assert_eq!(
            base.metrics.applies, tr.metrics.applies,
            "{kind}: applies diverged"
        );
        assert_eq!(
            base.metrics.all.total_count(),
            tr.metrics.all.total_count(),
            "{kind}: message count diverged"
        );
        assert_eq!(
            base.history
                .as_ref()
                .map(|h| (h.total_ops(), h.total_applies())),
            tr.history
                .as_ref()
                .map(|h| (h.total_ops(), h.total_applies())),
            "{kind}: history diverged"
        );
    }
}

#[test]
fn trace_timestamps_are_nondecreasing() {
    let cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 6, 0.5, 3).small();
    let (_, tracer) = traced(&cfg);
    for w in tracer.events.windows(2) {
        assert!(
            w[0].t <= w[1].t,
            "trace out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn every_apply_references_a_traced_write() {
    // Causal-chain integrity: each applied update must name a (origin,
    // clock) that the trace saw being written, so a post-hoc tool can walk
    // apply → write chains without dangling references.
    let cfg = SimConfig::paper_partial(ProtocolKind::FullTrack, 6, 0.5, 11).small();
    let (_, tracer) = traced(&cfg);
    let writes: Vec<(u16, u64)> = tracer
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Write { clock, .. } => Some((e.site.0, clock)),
            _ => None,
        })
        .collect();
    assert!(!writes.is_empty());
    let mut applies = 0;
    for e in &tracer.events {
        if let EventKind::Apply { origin, clock, .. } = e.kind {
            applies += 1;
            assert!(
                writes.contains(&(origin.0, clock)),
                "apply of untraced write s{}@{clock}",
                origin.0
            );
        }
    }
    assert!(applies > 0, "no applies traced");
}

#[test]
fn chaos_runs_trace_faults_and_recovery() {
    let mut cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 6, 0.5, 5).small();
    cfg.faults = FaultPlan::uniform(0.05, 0.01);
    cfg.crashes = vec![CrashWindow {
        site: SiteId(0),
        start: SimTime::from_millis(500),
        end: SimTime::from_millis(1_200),
    }];
    cfg.durability = DurabilityPlan {
        wal: true,
        checkpoint_every: Some(SimDuration::from_millis(250)),
        fetch_deadline: Some(SimDuration::from_millis(150)),
        lose_media: Vec::new(),
        torn_tail: Vec::new(),
    };
    let (r, tracer) = traced(&cfg);
    assert_eq!(r.final_pending, 0);
    let has = |f: &dyn Fn(&EventKind) -> bool| tracer.events.iter().any(|e| f(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::Crash)));
    assert!(has(&|k| matches!(k, EventKind::Recover { .. })));
    assert!(has(&|k| matches!(k, EventKind::RecoveryDone { .. })));
    assert!(has(&|k| matches!(k, EventKind::WalAppend { .. })));
    assert!(has(&|k| matches!(k, EventKind::Checkpoint { .. })));
    assert!(has(&|k| matches!(k, EventKind::SyncReq { .. })));
    assert!(has(&|k| matches!(k, EventKind::SyncResp { .. })));
    // 5% loss over a full run always retransmits at least once.
    assert!(has(&|k| matches!(k, EventKind::Retransmit { .. })));
    // The per-site registry mirrors the trace: retransmit counters light up.
    let retrans: u64 = r.metrics.per_site.iter().map(|s| s.retransmits).sum();
    assert_eq!(retrans, r.metrics.retransmissions);
}

#[test]
fn traces_survive_a_jsonl_round_trip() {
    let cfg = SimConfig::paper_partial(ProtocolKind::OptTrack, 6, 0.5, 9).small();
    let (_, tracer) = traced(&cfg);
    let text = to_jsonl(&tracer.events);
    let back = parse_jsonl(&text).expect("parses");
    assert_eq!(back, tracer.events);
}

#[test]
fn per_site_registry_is_populated_without_tracing() {
    // Registry counters feed sweep columns, so they must be live even when
    // no tracer is attached.
    let cfg = SimConfig::paper_partial(ProtocolKind::FullTrack, 6, 0.5, 2).small();
    let r = run(&cfg);
    assert_eq!(r.metrics.per_site.len(), 6);
    let sends: u64 = r.metrics.per_site.iter().map(|s| s.sends).sum();
    let delivers: u64 = r.metrics.per_site.iter().map(|s| s.delivers).sum();
    let applies: u64 = r.metrics.per_site.iter().map(|s| s.applies).sum();
    assert!(sends > 0, "no per-site sends");
    assert_eq!(sends, delivers, "lossless run: every send delivers");
    assert_eq!(applies, r.metrics.applies);
}
