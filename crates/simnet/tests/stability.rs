//! Causal stability tracking and stable-frontier garbage collection.
//!
//! A write is *stable* once every live member has applied it; everything at
//! or below the stable frontier can never again block or constrain a
//! delivery, so the collectors may drop the metadata describing it. These
//! tests pin the safety half of that contract (GC is invisible to protocol
//! behaviour and to the checker), the liveness half (a crashed member stalls
//! the frontier, and GC resumes after recovery), and the two pressure
//! valves (stuck-buffer watchdog, soft-cap write backpressure).

use causal_checker::check;
use causal_proto::ProtocolKind;
use causal_simnet::{run, CrashWindow, DurabilityPlan, FaultPlan, SimConfig, StabilityPlan};
use causal_types::{SimDuration, SimTime, SiteId};
use causal_workload::WorkloadParams;

const PROTOCOLS: [(ProtocolKind, bool); 5] = [
    (ProtocolKind::FullTrack, true),
    (ProtocolKind::OptTrack, true),
    (ProtocolKind::HbTrack, true),
    (ProtocolKind::OptTrackCrp, false),
    (ProtocolKind::OptP, false),
];

/// A dense little soak: tight delays keep many writes in flight, which is
/// exactly the regime where premature collection or a recovery
/// fast-forward/value mismatch becomes a stale read.
fn soak_cfg(kind: ProtocolKind, partial: bool, epp: usize) -> SimConfig {
    let mut cfg = if partial {
        SimConfig::paper_partial(kind, 8, 0.5, 701)
    } else {
        SimConfig::paper_full(kind, 8, 0.5, 701)
    };
    cfg.workload = WorkloadParams::soak(8, 0.5, 701);
    cfg.workload.events_per_process = epp;
    cfg.with_durability(DurabilityPlan {
        wal: true,
        ..Default::default()
    })
    .with_history()
}

/// Crash site 1 over the first half of the run (same shape as the soak
/// sweep's `crashed` scenario).
fn crashed(mut cfg: SimConfig, epp: usize) -> SimConfig {
    let span_ms = epp as u64 * 11 / 2;
    cfg.crashes = vec![CrashWindow {
        site: SiteId(1),
        start: SimTime::from_millis(span_ms / 4),
        end: SimTime::from_millis(span_ms * 45 / 100),
    }];
    cfg
}

/// With GC on, every protocol stays checker-clean and actually collects:
/// log entries or `LastWriteOn` slots are dropped and fully-checkpointed
/// WAL segments are deleted.
#[test]
fn gc_on_is_checker_clean_and_collects_for_every_protocol() {
    for (kind, partial) in PROTOCOLS {
        let cfg = soak_cfg(kind, partial, 600).with_stability(StabilityPlan::default());
        let r = run(&cfg);
        assert_eq!(r.final_pending, 0, "{kind}: parked updates left");
        let v = check(r.history.as_ref().unwrap());
        assert!(v.protocol_clean(), "{kind}: {:?}", v.examples);
        assert!(
            r.metrics.gc_log_entries + r.metrics.gc_slots > 0 || kind == ProtocolKind::HbTrack,
            "{kind}: GC never collected protocol metadata"
        );
        assert!(
            r.metrics.wal_deleted_bytes > 0,
            "{kind}: no WAL segment fell behind the stable frontier"
        );
    }
}

/// GC only ever drops provably-redundant state, so switching it off must
/// not change a single observable of the run — only the retained-bytes
/// trajectory. This is the strongest form of the "GC is invisible"
/// contract, and the GC-off peak doubles as the unbounded baseline: the
/// GC-on peak must be a small fraction of it.
#[test]
fn gc_is_invisible_and_bounds_retained_metadata() {
    for (kind, partial) in [
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::OptTrackCrp, false),
    ] {
        let on = run(&soak_cfg(kind, partial, 800).with_stability(StabilityPlan::default()));
        let off = run(
            &soak_cfg(kind, partial, 800).with_stability(StabilityPlan::default().without_gc())
        );
        assert_eq!(on.duration, off.duration, "{kind}: GC changed virtual time");
        assert_eq!(on.metrics.writes, off.metrics.writes, "{kind}");
        assert_eq!(on.metrics.reads, off.metrics.reads, "{kind}");
        assert_eq!(on.metrics.remote_reads, off.metrics.remote_reads, "{kind}");
        assert!(
            on.metrics.retained_meta_peak < off.metrics.retained_meta_peak / 4,
            "{kind}: GC-on peak {} not well below GC-off peak {}",
            on.metrics.retained_meta_peak,
            off.metrics.retained_meta_peak
        );
        assert_eq!(
            off.metrics.wal_deleted_bytes, 0,
            "{kind}: GC-off deleted WAL"
        );
    }
}

/// A crashed member stalls the stable frontier (its delivery rows stop
/// advancing), GC pauses rather than collecting state the absentee still
/// needs, and after recovery the frontier moves again and collection
/// resumes — all without a single causal violation.
#[test]
fn crash_stalls_the_frontier_and_gc_resumes() {
    for (kind, partial) in PROTOCOLS {
        let cfg =
            crashed(soak_cfg(kind, partial, 600), 600).with_stability(StabilityPlan::default());
        let r = run(&cfg);
        assert_eq!(r.final_pending, 0, "{kind}");
        let v = check(r.history.as_ref().unwrap());
        assert!(v.protocol_clean(), "{kind}: {:?}", v.examples);
        assert!(
            r.metrics.gc_stalled_ticks > 0,
            "{kind}: frontier never stalled during the crash"
        );
        assert!(
            r.metrics.gc_slots + r.metrics.gc_log_entries + r.metrics.wal_deleted_bytes > 0,
            "{kind}: GC never resumed after recovery"
        );
    }
}

/// Regression guard for crash recovery under a dense in-flight window: the
/// full-replication snapshot install must fast-forward delivery counters to
/// the merged applied horizon and drop the redeliveries it covers —
/// stopping at the acked prefix lets stale retransmissions roll installed
/// values backwards (stale reads at the recovered site). Runs with and
/// without WAL (rebuild-from-peers path) and with no stability plan at all:
/// the guarantee is the protocol's, not the collector's.
#[test]
fn dense_crash_recovery_is_checker_clean_without_stability() {
    for (kind, partial, wal) in [
        (ProtocolKind::OptTrackCrp, false, true),
        (ProtocolKind::OptTrackCrp, false, false),
        (ProtocolKind::OptP, false, true),
        (ProtocolKind::OptP, false, false),
        (ProtocolKind::FullTrack, true, true),
        (ProtocolKind::OptTrack, true, true),
        (ProtocolKind::HbTrack, true, true),
    ] {
        let mut cfg = crashed(soak_cfg(kind, partial, 600), 600);
        if !wal {
            cfg.durability = DurabilityPlan::default();
        }
        let r = run(&cfg);
        let v = check(r.history.as_ref().unwrap());
        assert!(v.protocol_clean(), "{kind} wal={wal}: {:?}", v.examples);
    }
}

/// Frame loss stretches retransmission gaps to tens of milliseconds, so
/// dependent updates park well past a 20 ms threshold; the watchdog counts
/// them (once each) and the run still completes and checks clean.
#[test]
fn overdue_watchdog_flags_long_parked_updates() {
    let mut cfg = soak_cfg(ProtocolKind::OptP, false, 600);
    cfg.faults = FaultPlan {
        drop: 0.2,
        ..Default::default()
    };
    let mut plan = StabilityPlan::default().with_overdue_after(SimDuration::from_millis(20));
    plan.heartbeat_every = SimDuration::from_millis(10);
    let cfg = cfg.with_stability(plan);
    let r = run(&cfg);
    assert_eq!(r.final_pending, 0);
    assert!(
        r.metrics.buffered_overdue > 0,
        "loss-stretched parks never tripped the 20 ms watchdog"
    );
    let v = check(r.history.as_ref().unwrap());
    assert!(v.protocol_clean(), "{:?}", v.examples);
}

/// Under a soft retained-metadata cap with GC disabled, retention can only
/// grow, so the cap engages and defers write issuance — bounded per op, so
/// the schedule still completes, and backpressure must never corrupt
/// causal order.
#[test]
fn soft_cap_backpressure_completes_clean() {
    let cfg = soak_cfg(ProtocolKind::OptTrack, true, 400).with_stability(
        StabilityPlan::default()
            .without_gc()
            .with_soft_meta_cap(20_000),
    );
    let r = run(&cfg);
    assert_eq!(r.final_pending, 0);
    assert!(
        r.metrics.backpressure_events > 0,
        "cap of 20 KB never engaged against an unbounded retention curve"
    );
    let v = check(r.history.as_ref().unwrap());
    assert!(v.protocol_clean(), "{:?}", v.examples);
}

/// The tracker works from gossiped knowledge only, so its lag gauge and
/// unstable-window peak are live on every protocol even with GC off.
#[test]
fn lag_metrics_are_recorded() {
    let cfg = soak_cfg(ProtocolKind::FullTrack, true, 400)
        .with_stability(StabilityPlan::default().without_gc());
    let r = run(&cfg);
    assert!(r.metrics.gossip_rows > 0, "no delivery rows gossiped");
    assert!(r.metrics.unstable_peak > 0, "unstable window never tracked");
    assert!(
        r.metrics.stability_lag_p99.estimate().is_some(),
        "lag quantile never fed"
    );
}
