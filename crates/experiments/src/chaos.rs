//! Chaos sweeps: protocol behavior and transport overhead on lossy
//! networks with crash/recovery.
//!
//! The paper measures the protocols over TCP — a lossless substrate. These
//! sweeps ask the robustness question the paper leaves open: what does each
//! protocol's traffic cost look like when the channel guarantees must be
//! *paid for* (retransmissions, acks, duplicate suppression), and how
//! expensive is rebuilding a site's causal state after a fail-stop crash
//! with state loss? Every run still passes the causal-consistency checker —
//! the sweep is also a large randomized correctness net for the transport.
//!
//! The grid's runs are independent, so they fan out across `jobs` worker
//! threads ([`crate::pool`]); results fold in input order, keeping the
//! table — and any `--trace-dir` JSONL traces — byte-identical to a
//! sequential run.

use causal_checker::check;
use causal_metrics::Table;
use causal_obs::{BufTracer, TraceEvent};
use causal_proto::ProtocolKind;
use causal_simnet::{run_traced, CrashWindow, FaultPlan, SimConfig, SimResult};
use causal_types::{SimTime, SiteId};
use std::path::Path;

use crate::trace::write_trace;
use crate::{pool, Scale};

/// The loss-rate grid: drop probability per transport frame; duplication
/// rides along at one quarter of the drop rate.
pub const LOSS_GRID: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

/// The protocols compared (one partial- and one full-replication pairing,
/// as in the paper's Table IV).
const PROTOCOLS: [(ProtocolKind, bool); 4] = [
    (ProtocolKind::FullTrack, true),
    (ProtocolKind::OptTrack, true),
    (ProtocolKind::OptTrackCrp, false),
    (ProtocolKind::OptP, false),
];

fn chaos_cfg(
    kind: ProtocolKind,
    partial: bool,
    n: usize,
    loss: f64,
    crash: bool,
    events: usize,
    seed: u64,
) -> SimConfig {
    let mut cfg = if partial {
        SimConfig::paper_partial(kind, n, 0.5, seed)
    } else {
        SimConfig::paper_full(kind, n, 0.5, seed)
    };
    cfg.workload.events_per_process = events;
    cfg.record_history = true;
    cfg.faults = FaultPlan::uniform(loss, loss / 4.0);
    if crash {
        cfg.crashes = vec![CrashWindow {
            site: SiteId(1),
            start: SimTime::from_millis(500),
            end: SimTime::from_millis(1_200),
        }];
    }
    cfg
}

/// A lowercase, filename-safe protocol slug (`opt-track-crp` etc.).
fn slug(kind: ProtocolKind) -> String {
    kind.to_string().to_lowercase().replace(' ', "-")
}

/// Transport overhead vs. loss rate: for each protocol and loss level,
/// the retransmission fraction, duplicate drops, ack traffic, the
/// protocol-payload vs. transport-overhead byte split, and the per-site
/// registry's P² tails (apply dwell, fetch RTT) with the buffered-update
/// total. Runs fan out over `jobs` threads; with a `trace_dir`, each run's
/// structured trace lands there as `chaos-<protocol>-<loss>.jsonl`. Panics
/// if any run fails to quiesce or violates causal consistency — chaos runs
/// are correctness tests first.
pub fn chaos_overhead(scale: Scale, n: usize, jobs: usize, trace_dir: Option<&Path>) -> Table {
    let mut t = Table::new(
        format!("Chaos sweep: transport overhead vs. loss rate (n={n}, w=0.5, one crash at 15% loss and above)"),
        &[
            "protocol", "loss", "retrans", "dup drops", "fault drops", "acks",
            "ack KB", "envelope KB", "sync KB", "recovery ms", "virtual s",
            "apply p99 ms", "rtt p99 ms", "buffered",
        ],
    );
    let events = scale.events().min(200);
    let units: Vec<(ProtocolKind, bool, f64)> = PROTOCOLS
        .iter()
        .flat_map(|&(kind, partial)| LOSS_GRID.iter().map(move |&loss| (kind, partial, loss)))
        .collect();
    let tracing = trace_dir.is_some();
    let results: Vec<(SimResult, Vec<TraceEvent>)> = pool::run_indexed(jobs, units.len(), |i| {
        let (kind, partial, loss) = units[i];
        // Crashes join the sweep once the network is already hostile,
        // so the recovery column reflects loss-degraded sync latency.
        let crash = loss >= 0.15;
        let cfg = chaos_cfg(kind, partial, n, loss, crash, events, 0xC4A0_5EED);
        let mut tracer = BufTracer::default();
        if tracing {
            (run_traced(&cfg, &mut tracer), tracer.events)
        } else {
            (causal_simnet::run(&cfg), Vec::new())
        }
    });
    for ((kind, _, loss), (r, events)) in units.iter().zip(results) {
        let kind = *kind;
        let loss = *loss;
        assert_eq!(r.final_pending, 0, "{kind} loss={loss}: no quiescence");
        let v = check(r.history.as_ref().expect("recorded"));
        assert!(
            v.protocol_clean(),
            "{kind} loss={loss}: causal violations: {:?}",
            v.examples
        );
        if let Some(dir) = trace_dir {
            let path = dir.join(format!("chaos-{}-{loss:.2}.jsonl", slug(kind)));
            write_trace(&path, &events).expect("trace write");
        }
        let m = &r.metrics;
        t.push_row(vec![
            kind.to_string(),
            format!("{loss:.2}"),
            m.retransmissions.to_string(),
            m.dup_drops.to_string(),
            m.fault_drops.to_string(),
            m.ack_count.to_string(),
            format!("{:.1}", m.ack_bytes as f64 / 1000.0),
            format!("{:.1}", m.envelope_bytes as f64 / 1000.0),
            format!("{:.1}", m.sync_bytes as f64 / 1000.0),
            if m.recovery_ns.count() > 0 {
                format!("{:.1}", m.recovery_ns.mean() / 1e6)
            } else {
                "-".to_string()
            },
            format!("{:.1}", r.duration.as_secs_f64()),
            match m.apply_latency_p99.estimate() {
                Some(p) => format!("{:.1}", p / 1e6),
                None => "-".to_string(),
            },
            match m.fetch_rtt_p99.estimate() {
                Some(p) => format!("{:.1}", p / 1e6),
                None => "-".to_string(),
            },
            m.per_site.total_buffered().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_runs_clean_at_quick_scale() {
        let t = chaos_overhead(Scale::Quick, 5, 1, None);
        assert_eq!(t.len(), PROTOCOLS.len() * LOSS_GRID.len());
        let csv = t.to_csv();
        // The zero-loss rows are pass-through: no retransmissions.
        for line in csv.lines().skip(1).step_by(LOSS_GRID.len()) {
            let retrans: u64 = line.split(',').nth(2).unwrap().parse().unwrap();
            assert_eq!(retrans, 0, "loss 0.00 must be pass-through: {line}");
        }
    }

    #[test]
    fn parallel_chaos_sweep_is_byte_identical_to_sequential() {
        let dir = std::env::temp_dir().join(format!("causal-chaos-par-{}", std::process::id()));
        let seq_dir = dir.join("seq");
        let par_dir = dir.join("par");
        std::fs::create_dir_all(&seq_dir).unwrap();
        std::fs::create_dir_all(&par_dir).unwrap();
        let seq = chaos_overhead(Scale::Quick, 5, 1, Some(&seq_dir));
        let par = chaos_overhead(Scale::Quick, 5, 4, Some(&par_dir));
        assert_eq!(seq.to_csv(), par.to_csv(), "tables diverge across jobs");
        let mut names: Vec<_> = std::fs::read_dir(&seq_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names.sort();
        assert_eq!(names.len(), PROTOCOLS.len() * LOSS_GRID.len());
        for name in names {
            let a = std::fs::read(seq_dir.join(&name)).unwrap();
            let b = std::fs::read(par_dir.join(&name)).unwrap();
            assert!(!a.is_empty(), "{name:?}: empty trace");
            assert_eq!(a, b, "{name:?}: traces diverge across jobs");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
