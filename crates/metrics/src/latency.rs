//! Operation-latency recording for the live serving path.
//!
//! The `serve` load generator is closed-loop: every client issues one
//! operation, waits for it to complete (a remote read blocks for its RM),
//! thinks, and issues the next. An [`OpLatency`] accumulates those
//! per-operation completion times in O(1) memory — mean/min/max via
//! [`StatAccum`] and the p50/p99 tails via two [`P2Quantile`] markers —
//! and snapshots to a plain-number [`LatencySummary`] for reports.
//!
//! P² markers cannot be merged across estimators, so a serving cluster
//! shares *one* recorder behind a mutex instead of folding per-site
//! estimates: operations complete at most a few thousand times per second,
//! which makes the lock uncontended in practice and keeps the tails exact
//! streaming estimates over the full run.

use crate::quantile::P2Quantile;
use crate::stats::StatAccum;
use serde::{Deserialize, Serialize};

/// Streaming operation-latency accumulator: count, mean, min/max, p50, p99.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpLatency {
    /// Mean / min / max over all completions.
    pub stats: StatAccum,
    /// Streaming median estimate.
    pub p50: P2Quantile,
    /// Streaming 99th-percentile estimate.
    pub p99: P2Quantile,
}

impl OpLatency {
    /// An empty recorder.
    pub fn new() -> Self {
        OpLatency {
            stats: StatAccum::new(),
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Record one operation's completion latency, in nanoseconds.
    pub fn record(&mut self, ns: f64) {
        self.stats.record(ns);
        self.p50.record(ns);
        self.p99.record(ns);
    }

    /// Number of completions recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Plain-number snapshot for reports and JSON artifacts.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            ops: self.stats.count(),
            mean_us: self.stats.mean() / 1e3,
            p50_us: self.p50.estimate().unwrap_or(0.0) / 1e3,
            p99_us: self.p99.estimate().unwrap_or(0.0) / 1e3,
            max_us: self.stats.max().unwrap_or(0.0) / 1e3,
        }
    }
}

impl Default for OpLatency {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time latency summary, microseconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Operations completed.
    pub ops: u64,
    /// Mean completion latency.
    pub mean_us: f64,
    /// Median (P² streaming estimate).
    pub p50_us: f64,
    /// 99th percentile (P² streaming estimate).
    pub p99_us: f64,
    /// Worst completion observed.
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let s = OpLatency::new().summary();
        assert_eq!(s.ops, 0);
        assert_eq!(s.p50_us, 0.0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }

    #[test]
    fn tails_separate_from_the_mean() {
        let mut l = OpLatency::new();
        // 990 fast ops at ~10 µs, 10 slow ones at 5 ms.
        for i in 0..1000u64 {
            let ns = if i % 100 == 99 { 5_000_000.0 } else { 10_000.0 };
            l.record(ns);
        }
        let s = l.summary();
        assert_eq!(s.ops, 1000);
        assert!(
            s.p50_us < 50.0,
            "median stays at the fast mode: {}",
            s.p50_us
        );
        assert!(
            s.p99_us > 1_000.0,
            "p99 must surface the slow tail: {}",
            s.p99_us
        );
        assert!((s.max_us - 5_000.0).abs() < 1e-6);
        assert!(s.mean_us > s.p50_us, "skew pulls the mean above the median");
    }
}
