//! Real-cluster serve mode: a benchmarked deployment of one protocol.
//!
//! `serve` is what the paper's testbed would have looked like with a
//! benchmark harness attached: every site is a live node scheduled on the
//! sharded worker pool, the transport is either the in-process channel
//! fabric or a real multiplexed loopback-TCP mesh, and the offered load
//! comes from closed-loop clients ([`crate::loadgen`]) instead of a
//! pre-generated schedule. The run reports what serving systems are
//! judged by — throughput and latency tails — next to the protocol-level
//! message and meta-data accounting the paper measures.
//!
//! Since client operations are generated at issue time from real completion
//! instants, a serve run is *not* schedule-replayable on the simulator;
//! sim-vs-real cross-validation uses replay mode ([`crate::run_tcp`] /
//! [`crate::run_threaded`] with the simulator's workload) instead.

use crate::loadgen::{ClosedLoop, LoadProfile};
use crate::node::{BatchWindow, ChannelTransport, Node, OpDriver, Transport};
use crate::runner::{build_fabric, drive, resolve_workers};
use crate::tcp::build_mesh;
use causal_checker::History;
use causal_memory::Placement;
use causal_metrics::{LatencySummary, OpLatency, RunMetrics};
use causal_proto::{build_site, ProtocolConfig, ProtocolKind, Replication};
use causal_types::{Result, SiteId, SizeModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which fabric carries the mesh traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTransport {
    /// In-process crossbeam channels (single-box A/B baseline).
    Channel,
    /// Multiplexed loopback TCP with `TCP_NODELAY` — the paper's actual
    /// transport, one socket per worker pair.
    Tcp,
}

impl ServeTransport {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ServeTransport::Channel => "channel",
            ServeTransport::Tcp => "tcp",
        }
    }
}

/// Configuration of a serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The protocol every site runs.
    pub protocol: ProtocolKind,
    /// Number of sites. Partial-capable protocols get the paper's
    /// 3-replica partial placement, the rest full replication.
    pub n: usize,
    /// The closed-loop client fleet.
    pub load: LoadProfile,
    /// The transport fabric.
    pub transport: ServeTransport,
    /// Per-destination update batching on the send path (`None` = off).
    pub batch: Option<BatchWindow>,
    /// Modeled payload length attached to written values (bytes).
    pub payload_len: u32,
    /// Byte accounting for the metrics.
    pub size_model: SizeModel,
    /// Scheduler worker threads (`0` = auto, `n` = thread-per-site
    /// emulation; clamped to `[1, n]`).
    pub workers: usize,
}

impl ServeConfig {
    /// A small smoke-sized run: `n` sites, 2 clients each issuing 40 ops
    /// with 1 ms mean think time, 30 % writes over 100 variables,
    /// auto-sized worker pool.
    pub fn quick(protocol: ProtocolKind, n: usize, transport: ServeTransport, seed: u64) -> Self {
        ServeConfig {
            protocol,
            n,
            load: LoadProfile {
                clients_per_site: 2,
                ops_per_client: 40,
                think: Duration::from_millis(1),
                w_rate: 0.3,
                q: 100,
                seed,
                duration: None,
            },
            transport,
            batch: None,
            payload_len: 0,
            size_model: SizeModel::java_like(),
            workers: 0,
        }
    }
}

/// What a serving run produced.
pub struct ServeReport {
    /// Client operations completed.
    pub ops: u64,
    /// Wall-clock duration of the run (spawn to quiescence).
    pub elapsed: Duration,
    /// Completion-latency summary (mean / p50 / p99 / max).
    pub latency: LatencySummary,
    /// Protocol-level message and meta-byte accounting (all client ops are
    /// measured; there is no warm-up window under closed-loop load).
    pub metrics: RunMetrics,
    /// The combined execution history (feed to `causal_checker::check`).
    pub history: History,
    /// Parked updates at shutdown, summed over sites (must be 0).
    pub final_pending: usize,
}

impl ServeReport {
    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Deploy the cluster, run the client fleet to completion, and collect the
/// report. Blocks until quiescent.
pub fn serve(cfg: &ServeConfig) -> Result<ServeReport> {
    let n = cfg.n;
    let placement = if cfg.protocol.supports_partial() {
        Arc::new(Placement::paper_partial(n)?)
    } else {
        Arc::new(Placement::full(n)?)
    };
    let repl: Arc<dyn Replication> = placement;
    let latency = Arc::new(Mutex::new(OpLatency::new()));
    let start = Instant::now();

    let fabric = build_fabric(n, resolve_workers(cfg.workers, n));
    // One transport per fabric; TCP additionally owns writer/reader
    // threads that must be joined after the workers exit.
    let channel_errors = Arc::new(AtomicU64::new(0));
    let mesh = match cfg.transport {
        ServeTransport::Tcp => Some(build_mesh(
            &fabric.routes,
            &fabric.quiesce,
            &fabric.threads,
        )?),
        ServeTransport::Channel => None,
    };
    let transport: Arc<dyn Transport> = match &mesh {
        Some(m) => m.transport(),
        None => Arc::new(ChannelTransport::new(
            fabric.routes.clone(),
            channel_errors.clone(),
        )),
    };

    let quiesce = fabric.quiesce.clone();
    let cluster = fabric.spawn(|i| {
        let site = SiteId::from(i);
        Node::new(
            site,
            build_site(cfg.protocol, site, repl.clone(), ProtocolConfig::default()),
            OpDriver::Closed(ClosedLoop::new(&cfg.load, site, latency.clone())),
            n,
            cfg.payload_len,
            transport.clone(),
            quiesce.clone(),
            cfg.size_model,
            cfg.batch,
            start,
        )
    });
    drop(transport);

    let (history, mut metrics, final_pending) = drive(cluster, &[]);
    let elapsed = start.elapsed();
    if let Some(m) = mesh {
        let errs = m.conn_error_counter();
        let syscalls = m.syscall_write_counter();
        m.teardown();
        metrics.transport_conn_errors += errs.load(Ordering::Relaxed);
        metrics.syscall_writes += syscalls.load(Ordering::Relaxed);
    }
    metrics.transport_conn_errors += channel_errors.load(Ordering::Relaxed);

    let latency = latency.lock().expect("latency recorder poisoned");
    Ok(ServeReport {
        ops: latency.count(),
        elapsed,
        latency: latency.summary(),
        metrics,
        history,
        final_pending,
    })
}
