//! Site, variable and write identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a site.
///
/// The paper assumes exactly one application process per site, so a `SiteId`
/// doubles as the identifier of the application process `ap_i` hosted there.
/// Sites are numbered densely `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Dense index of this site, for indexing `n`-sized arrays and matrices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all site ids of an `n`-site system.
    pub fn all(n: usize) -> impl Iterator<Item = SiteId> + Clone {
        (0..n as u16).map(SiteId)
    }
}

impl From<usize> for SiteId {
    fn from(i: usize) -> Self {
        debug_assert!(i <= u16::MAX as usize, "site index out of range");
        SiteId(i as u16)
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a shared variable `x_h ∈ Q`.
///
/// The distributed shared memory holds `q` variables; variables are numbered
/// densely `0..q`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all variable ids of a `q`-variable memory.
    pub fn all(q: usize) -> impl Iterator<Item = VarId> + Clone {
        (0..q as u32).map(VarId)
    }
}

impl From<usize> for VarId {
    fn from(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "variable index out of range");
        VarId(i as u32)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Globally unique identifier of a write operation: `⟨site, clock⟩`.
///
/// `clock` is the value of the writer's local write counter *after* the write
/// (the first write by a site has `clock == 1`). Two writes by the same site
/// are totally ordered by `clock`; this is the 2-tuple representation that
/// Opt-Track-CRP uses as its entire log-entry format.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WriteId {
    /// The writing site (and application process).
    pub site: SiteId,
    /// The writer's local write counter at the time of the write (1-based).
    pub clock: u64,
}

impl WriteId {
    /// Construct a write identifier.
    #[inline]
    pub fn new(site: SiteId, clock: u64) -> Self {
        WriteId { site, clock }
    }
}

impl fmt::Debug for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w({},{})", self.site, self.clock)
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w({},{})", self.site, self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_roundtrip_and_index() {
        let s = SiteId::from(7usize);
        assert_eq!(s, SiteId(7));
        assert_eq!(s.index(), 7);
        assert_eq!(format!("{s}"), "s7");
    }

    #[test]
    fn site_all_enumerates_densely() {
        let v: Vec<_> = SiteId::all(4).collect();
        assert_eq!(v, vec![SiteId(0), SiteId(1), SiteId(2), SiteId(3)]);
    }

    #[test]
    fn var_id_roundtrip_and_index() {
        let x = VarId::from(99usize);
        assert_eq!(x.index(), 99);
        assert_eq!(format!("{x}"), "x99");
    }

    #[test]
    fn var_all_enumerates_densely() {
        assert_eq!(VarId::all(3).count(), 3);
        assert_eq!(VarId::all(0).count(), 0);
    }

    #[test]
    fn write_id_ordering_is_site_then_clock() {
        let a = WriteId::new(SiteId(0), 5);
        let b = WriteId::new(SiteId(0), 6);
        let c = WriteId::new(SiteId(1), 1);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(format!("{a}"), "w(s0,5)");
    }
}
