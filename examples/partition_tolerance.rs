//! Availability under partition — the CAP story of the paper's §I.
//!
//! Severs a 8-site system down the middle for thirty virtual seconds while
//! a mixed workload runs, then shows that (a) nobody stopped serving,
//! (b) cross-partition updates parked and drained at heal, and (c) the
//! execution is still causally consistent end to end.
//!
//! ```text
//! cargo run --release --example partition_tolerance
//! ```

use causal_repro::clocks::DestSet;
use causal_repro::prelude::*;
use causal_repro::simnet::PartitionWindow;

fn main() {
    let n = 8;
    let mut cfg = SimConfig::paper_full(ProtocolKind::OptTrackCrp, n, 0.8, 2024);
    cfg.workload.events_per_process = 100;
    cfg.record_history = true;
    cfg.partitions = vec![PartitionWindow {
        start: SimTime::from_millis(10_000),
        end: SimTime::from_millis(40_000),
        side_a: DestSet::from_sites((0..n / 2).map(SiteId::from)),
    }];

    println!("running {n}-site Opt-Track-CRP (full replication, write-heavy) with a 30 s mid-run partition …");
    let parted = causal_repro::simnet::run(&cfg);

    let mut baseline_cfg = cfg.clone();
    baseline_cfg.partitions.clear();
    let baseline = causal_repro::simnet::run(&baseline_cfg);

    println!("\n                       baseline   partitioned");
    println!(
        "messages sent       {:>10} {:>12}",
        baseline.metrics.all.total_count(),
        parted.metrics.all.total_count()
    );
    println!(
        "max parked updates  {:>10} {:>12}",
        baseline.metrics.max_pending, parted.metrics.max_pending
    );
    println!(
        "mean apply latency  {:>8.1}ms {:>10.1}ms",
        baseline.metrics.apply_latency_ns.mean() / 1e6,
        parted.metrics.apply_latency_ns.mean() / 1e6
    );
    println!(
        "max apply latency   {:>8.1}ms {:>10.1}ms",
        baseline.metrics.apply_latency_ns.max().unwrap_or(0.0) / 1e6,
        parted.metrics.apply_latency_ns.max().unwrap_or(0.0) / 1e6
    );
    println!(
        "parked at the end   {:>10} {:>12}",
        baseline.final_pending, parted.final_pending
    );

    let v = check(parted.history.as_ref().unwrap());
    println!(
        "\ncausal consistency under partition: {}",
        if v.protocol_clean() {
            "verified ✓"
        } else {
            "VIOLATED ✗"
        }
    );
    assert!(v.protocol_clean());
    assert_eq!(
        baseline.metrics.all.total_count(),
        parted.metrics.all.total_count(),
        "availability: the partition never blocked an operation"
    );
    println!(
        "both sides kept accepting reads and writes the whole time — causal \
         consistency trades\nconvergence delay, never availability (the AP side \
         of CAP, as §I of the paper argues)."
    );
}
