//! Binary wire codec for protocol messages.
//!
//! The TCP transport in `causal-runtime` frames each [`Msg`] with this
//! codec (length-prefixed on the socket). The format is a straightforward
//! little-endian tag-length-value encoding — no self-description, no
//! versioning — because both ends of a run are always the same build, as in
//! the paper's testbed. Integers are fixed-width LE; collections carry a
//! `u32` length.
//!
//! Decoding is total: malformed input yields [`WireError`], never a panic,
//! so a corrupted frame cannot take down a site.

use crate::msg::{Fm, Msg, Rm, RmMeta, Sm, SmMeta};
use causal_clocks::{CrpLog, DestSet, Log, LogEntry, MatrixClock, VectorClock};
use causal_types::{SiteId, VarId, VersionedValue, WriteId};
use std::fmt;
use std::sync::Arc;

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// An enum tag was out of range.
    BadTag(u8),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode a message to bytes.
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        Msg::Sm(sm) => {
            out.push(0);
            put_var(&mut out, sm.var);
            put_value(&mut out, &sm.value);
            put_sm_meta(&mut out, &sm.meta);
        }
        Msg::Fm(fm) => {
            out.push(1);
            put_var(&mut out, fm.var);
        }
        Msg::Rm(rm) => {
            out.push(2);
            put_var(&mut out, rm.var);
            match &rm.value {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    put_value(&mut out, v);
                }
            }
            put_rm_meta(&mut out, &rm.meta);
        }
    }
    out
}

/// Decode a message from bytes; the whole input must be consumed.
pub fn decode(buf: &[u8]) -> Result<Msg, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let msg = match r.u8()? {
        0 => Msg::Sm(Sm {
            var: r.var()?,
            value: r.value()?,
            meta: r.sm_meta()?,
        }),
        1 => Msg::Fm(Fm { var: r.var()? }),
        2 => {
            let var = r.var()?;
            let value = match r.u8()? {
                0 => None,
                1 => Some(r.value()?),
                t => return Err(WireError::BadTag(t)),
            };
            let meta = r.rm_meta()?;
            Msg::Rm(Rm { var, value, meta })
        }
        t => return Err(WireError::BadTag(t)),
    };
    if r.pos != buf.len() {
        return Err(WireError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn put_var(out: &mut Vec<u8>, v: VarId) {
    out.extend_from_slice(&v.0.to_le_bytes());
}

fn put_write_id(out: &mut Vec<u8>, w: WriteId) {
    out.extend_from_slice(&w.site.0.to_le_bytes());
    out.extend_from_slice(&w.clock.to_le_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &VersionedValue) {
    put_write_id(out, v.writer);
    out.extend_from_slice(&v.data.to_le_bytes());
    out.extend_from_slice(&v.payload_len.to_le_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &MatrixClock) {
    out.extend_from_slice(&(m.n() as u32).to_le_bytes());
    for j in SiteId::all(m.n()) {
        for k in SiteId::all(m.n()) {
            out.extend_from_slice(&m.get(j, k).to_le_bytes());
        }
    }
}

fn put_vector(out: &mut Vec<u8>, v: &VectorClock) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for (_, c) in v.iter() {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

fn put_dests(out: &mut Vec<u8>, d: &DestSet) {
    out.extend_from_slice(&(d.len() as u32).to_le_bytes());
    for s in d.iter() {
        out.extend_from_slice(&s.0.to_le_bytes());
    }
}

fn put_log(out: &mut Vec<u8>, log: &Log) {
    out.extend_from_slice(&(log.len() as u32).to_le_bytes());
    for e in log.iter() {
        out.extend_from_slice(&e.origin.0.to_le_bytes());
        out.extend_from_slice(&e.clock.to_le_bytes());
        put_dests(out, &e.dests);
    }
}

fn put_crp_log(out: &mut Vec<u8>, log: &CrpLog) {
    out.extend_from_slice(&(log.len() as u32).to_le_bytes());
    for w in log.iter() {
        put_write_id(out, *w);
    }
}

fn put_sm_meta(out: &mut Vec<u8>, meta: &SmMeta) {
    match meta {
        SmMeta::FullTrack { write } => {
            out.push(0);
            put_matrix(out, write);
        }
        SmMeta::OptTrack { clock, log } => {
            out.push(1);
            out.extend_from_slice(&clock.to_le_bytes());
            put_log(out, log);
        }
        SmMeta::Crp { clock, log } => {
            out.push(2);
            out.extend_from_slice(&clock.to_le_bytes());
            put_crp_log(out, log);
        }
        SmMeta::OptP { write } => {
            out.push(3);
            put_vector(out, write);
        }
    }
}

fn put_rm_meta(out: &mut Vec<u8>, meta: &RmMeta) {
    match meta {
        RmMeta::FullTrack(None) => out.push(0),
        RmMeta::FullTrack(Some(m)) => {
            out.push(1);
            put_matrix(out, m);
        }
        RmMeta::OptTrack(None) => out.push(2),
        RmMeta::OptTrack(Some(l)) => {
            out.push(3);
            put_log(out, l);
        }
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn var(&mut self) -> Result<VarId, WireError> {
        Ok(VarId(self.u32()?))
    }

    fn write_id(&mut self) -> Result<WriteId, WireError> {
        Ok(WriteId {
            site: SiteId(self.u16()?),
            clock: self.u64()?,
        })
    }

    fn value(&mut self) -> Result<VersionedValue, WireError> {
        Ok(VersionedValue {
            writer: self.write_id()?,
            data: self.u64()?,
            payload_len: self.u32()?,
        })
    }

    fn matrix(&mut self) -> Result<MatrixClock, WireError> {
        let n = self.u32()? as usize;
        // Cap n to the sane range before allocating n² cells from
        // attacker-controlled input.
        if n > causal_clocks::dests::MAX_SITES {
            return Err(WireError::Truncated);
        }
        let mut m = MatrixClock::new(n);
        for j in SiteId::all(n) {
            for k in SiteId::all(n) {
                m.set(j, k, self.u64()?);
            }
        }
        Ok(m)
    }

    fn vector(&mut self) -> Result<VectorClock, WireError> {
        let n = self.u32()? as usize;
        if n > causal_clocks::dests::MAX_SITES {
            return Err(WireError::Truncated);
        }
        let mut v = VectorClock::new(n);
        for i in SiteId::all(n) {
            let c = self.u64()?;
            v.set(i, c);
        }
        Ok(v)
    }

    fn dests(&mut self) -> Result<DestSet, WireError> {
        let n = self.u32()? as usize;
        if n > causal_clocks::dests::MAX_SITES {
            return Err(WireError::Truncated);
        }
        let mut d = DestSet::EMPTY;
        for _ in 0..n {
            let raw = self.u16()?;
            if raw as usize >= causal_clocks::dests::MAX_SITES {
                return Err(WireError::Truncated);
            }
            d.insert(SiteId(raw));
        }
        Ok(d)
    }

    fn log(&mut self) -> Result<Log, WireError> {
        let n = self.u32()? as usize;
        let mut log = Log::new();
        for _ in 0..n {
            let origin = SiteId(self.u16()?);
            let clock = self.u64()?;
            let dests = self.dests()?;
            log.upsert(LogEntry::new(origin, clock, dests));
        }
        Ok(log)
    }

    fn crp_log(&mut self) -> Result<CrpLog, WireError> {
        let n = self.u32()? as usize;
        let mut log = CrpLog::new();
        for _ in 0..n {
            log.observe(self.write_id()?);
        }
        Ok(log)
    }

    fn sm_meta(&mut self) -> Result<SmMeta, WireError> {
        Ok(match self.u8()? {
            0 => SmMeta::FullTrack {
                write: Arc::new(self.matrix()?),
            },
            1 => SmMeta::OptTrack {
                clock: self.u64()?,
                log: Arc::new(self.log()?),
            },
            2 => SmMeta::Crp {
                clock: self.u64()?,
                log: Arc::new(self.crp_log()?),
            },
            3 => SmMeta::OptP {
                write: Arc::new(self.vector()?),
            },
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn rm_meta(&mut self) -> Result<RmMeta, WireError> {
        Ok(match self.u8()? {
            0 => RmMeta::FullTrack(None),
            1 => RmMeta::FullTrack(Some(Arc::new(self.matrix()?))),
            2 => RmMeta::OptTrack(None),
            3 => RmMeta::OptTrack(Some(Arc::new(self.log()?))),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_log() -> Log {
        let mut log = Log::new();
        log.upsert(LogEntry::new(
            SiteId(1),
            7,
            DestSet::from_sites([SiteId(0), SiteId(3)]),
        ));
        log.upsert(LogEntry::new(SiteId(2), 1, DestSet::EMPTY));
        log
    }

    #[test]
    fn roundtrip_each_variant() {
        let value = VersionedValue::with_payload(WriteId::new(SiteId(3), 9), 42, 1000);
        let msgs = vec![
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::FullTrack {
                    write: Arc::new(MatrixClock::new(4)),
                },
            }),
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::OptTrack {
                    clock: 9,
                    log: Arc::new(sample_log()),
                },
            }),
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::Crp {
                    clock: 9,
                    log: Arc::new({
                        let mut l = CrpLog::new();
                        l.observe(WriteId::new(SiteId(0), 3));
                        l
                    }),
                },
            }),
            Msg::Sm(Sm {
                var: VarId(5),
                value,
                meta: SmMeta::OptP {
                    write: Arc::new(VectorClock::new(6)),
                },
            }),
            Msg::Fm(Fm { var: VarId(0) }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: None,
                meta: RmMeta::OptTrack(None),
            }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: Some(value),
                meta: RmMeta::OptTrack(Some(Arc::new(sample_log()))),
            }),
            Msg::Rm(Rm {
                var: VarId(1),
                value: Some(value),
                meta: RmMeta::FullTrack(Some(Arc::new(MatrixClock::new(3)))),
            }),
        ];
        for msg in msgs {
            let bytes = encode(&msg);
            let back = decode(&bytes).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let msg = Msg::Sm(Sm {
            var: VarId(5),
            value: VersionedValue::new(WriteId::new(SiteId(0), 1), 0),
            meta: SmMeta::OptP {
                write: Arc::new(VectorClock::new(8)),
            },
        });
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(decode(&[9]), Err(WireError::BadTag(9)));
        assert!(matches!(decode(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&Msg::Fm(Fm { var: VarId(3) }));
        bytes.push(0xFF);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn oversized_matrix_rejected() {
        // Tag 0 (Sm) + var + value + meta tag 0 (FullTrack) + n = 2^31.
        let value = VersionedValue::new(WriteId::new(SiteId(0), 1), 0);
        let mut bytes = vec![0u8];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        super::put_value(&mut bytes, &value);
        bytes.push(0);
        bytes.extend_from_slice(&(1u32 << 31).to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::Truncated));
    }

    proptest! {
        #[test]
        fn prop_opt_track_sm_roundtrip(
            var in 0u32..1000,
            clock in 1u64..1_000_000,
            site in 0u16..40,
            entries in proptest::collection::vec(
                (0u16..40, 1u64..100, proptest::collection::vec(0usize..40, 0..8)),
                0..12,
            ),
        ) {
            let mut log = Log::new();
            for (o, c, ds) in entries {
                log.upsert(LogEntry::new(
                    SiteId(o),
                    c,
                    DestSet::from_sites(ds.into_iter().map(SiteId::from)),
                ));
            }
            let msg = Msg::Sm(Sm {
                var: VarId(var),
                value: VersionedValue::new(WriteId::new(SiteId(site), clock), clock ^ 0xABCD),
                meta: SmMeta::OptTrack {
                    clock,
                    log: Arc::new(log),
                },
            });
            prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }

        #[test]
        fn prop_full_track_sm_roundtrip(n in 1usize..40, cells in proptest::collection::vec(0u64..1000, 1..64)) {
            let mut m = MatrixClock::new(n);
            for (i, &c) in cells.iter().enumerate() {
                let j = i % n;
                let k = (i / n) % n;
                m.set(SiteId::from(j), SiteId::from(k), c);
            }
            let msg = Msg::Sm(Sm {
                var: VarId(1),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 2),
                meta: SmMeta::FullTrack { write: Arc::new(m) },
            });
            prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }

        #[test]
        fn prop_optp_and_crp_roundtrip(n in 1usize..40, comps in proptest::collection::vec(0u64..1000, 1..40),
                                        tuples in proptest::collection::vec((0u16..40, 1u64..100), 0..12)) {
            let mut v = VectorClock::new(n);
            for (i, &c) in comps.iter().enumerate().take(n) {
                v.set(SiteId::from(i), c);
            }
            let m1 = Msg::Sm(Sm {
                var: VarId(1),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 2),
                meta: SmMeta::OptP { write: Arc::new(v) },
            });
            prop_assert_eq!(decode(&encode(&m1)).unwrap(), m1);

            let mut log = CrpLog::new();
            for (s, c) in tuples {
                log.observe(WriteId::new(SiteId(s), c));
            }
            let m2 = Msg::Sm(Sm {
                var: VarId(1),
                value: VersionedValue::new(WriteId::new(SiteId(0), 1), 2),
                meta: SmMeta::Crp {
                    clock: 5,
                    log: Arc::new(log),
                },
            });
            prop_assert_eq!(decode(&encode(&m2)).unwrap(), m2);
        }

        #[test]
        fn prop_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Total decoding: arbitrary bytes must produce Ok or Err, never
            // a panic or huge allocation.
            let _ = decode(&noise);
        }
    }
}
