//! Multi-seed simulation sweeps with per-invocation caching.

use causal_metrics::MessageStats;
use causal_proto::ProtocolKind;
use causal_simnet::{run, SimConfig};
use causal_types::MsgKind;
use std::collections::HashMap;

/// Run scale: paper-size or reduced for smoke tests and CI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// 600 events per process, 3 seeds per cell — the paper's setting
    /// ("multiple runs were performed ... only the mean is represented").
    Paper,
    /// 120 events per process, 2 seeds — an order of magnitude faster,
    /// same qualitative shape.
    Quick,
}

impl Scale {
    /// Events per process at this scale.
    pub fn events(self) -> usize {
        match self {
            Scale::Paper => 600,
            Scale::Quick => 120,
        }
    }

    /// Seeds averaged per parameter cell.
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Paper => 3,
            Scale::Quick => 2,
        }
    }
}

/// Whether a protocol runs under the paper's partial placement or full
/// replication in a given experiment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// `p = round(0.3·n)`, even placement.
    Partial,
    /// `p = n`.
    Full,
}

/// Seed-averaged measurements of one `(protocol, mode, n, w_rate)` cell.
#[derive(Clone, Debug)]
pub struct CellStats {
    /// Mean measured (post-warm-up) message count per run.
    pub total_count: f64,
    /// Mean measured meta-data bytes per run, all message kinds.
    pub total_bytes: f64,
    /// Mean per-message meta bytes, by kind (`None` if no such messages).
    pub avg_bytes: [Option<f64>; 3],
    /// Mean measured byte total per kind.
    pub kind_bytes: [f64; 3],
    /// Mean piggybacked-structure entry count per SM.
    pub sm_entries: f64,
    /// Mean measured writes / reads per run.
    pub writes: f64,
    /// Mean measured reads per run.
    pub reads: f64,
    /// Mean receipt→apply latency over received updates, milliseconds.
    pub apply_latency_ms: f64,
    /// Largest pending-buffer population seen in any run.
    pub max_pending: usize,
    /// Mean per-site causality-metadata storage at quiescence, bytes.
    pub local_meta_mean: f64,
}

impl CellStats {
    /// Average meta bytes per message of `kind`, defaulting to 0.
    pub fn avg(&self, kind: MsgKind) -> f64 {
        self.avg_bytes[kind.index()].unwrap_or(0.0)
    }
}

type Key = (
    ProtocolKind,
    Mode,
    usize,
    u64, /* w_rate in per-mille */
);

/// A cached sweep runner: each `(protocol, mode, n, w_rate)` cell is
/// simulated once per seed and reused across figures.
pub struct Sweep {
    scale: Scale,
    cache: HashMap<Key, CellStats>,
    /// Base seed; cell seeds derive from it deterministically.
    pub base_seed: u64,
}

impl Sweep {
    /// New sweep at the given scale.
    pub fn new(scale: Scale) -> Self {
        Sweep {
            scale,
            cache: HashMap::new(),
            base_seed: 0xCA05_A11B,
        }
    }

    /// The scale this sweep runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The paper's `n` grid.
    pub const N_GRID: [usize; 5] = [5, 10, 20, 30, 40];
    /// The paper's extended `n` grid for Table III / Figs. 6–8.
    pub const N_GRID_FULL: [usize; 6] = [5, 10, 20, 30, 35, 40];
    /// The paper's write-rate grid.
    pub const W_GRID: [f64; 3] = [0.2, 0.5, 0.8];

    /// Simulate (or fetch) one cell.
    pub fn cell(
        &mut self,
        protocol: ProtocolKind,
        mode: Mode,
        n: usize,
        w_rate: f64,
    ) -> &CellStats {
        let key = (protocol, mode, n, (w_rate * 1000.0).round() as u64);
        if !self.cache.contains_key(&key) {
            let stats = self.run_cell(protocol, mode, n, w_rate);
            self.cache.insert(key, stats);
        }
        &self.cache[&key]
    }

    fn run_cell(&self, protocol: ProtocolKind, mode: Mode, n: usize, w_rate: f64) -> CellStats {
        let seeds = self.scale.seeds();
        let mut agg = MessageStats::new();
        let mut sm_entries = 0.0;
        let mut writes = 0.0;
        let mut reads = 0.0;
        let mut apply_latency = 0.0;
        let mut max_pending = 0usize;
        let mut local_meta = 0.0;
        for s in 0..seeds {
            // Seed depends on (n, w_rate, replica mode) but NOT on the
            // protocol: Table IV compares protocols on identical schedules.
            let seed = self
                .base_seed
                .wrapping_add(s)
                .wrapping_add((n as u64) << 16)
                .wrapping_add(((w_rate * 1000.0) as u64) << 32);
            let mut cfg = match mode {
                Mode::Partial => SimConfig::paper_partial(protocol, n, w_rate, seed),
                Mode::Full => SimConfig::paper_full(protocol, n, w_rate, seed),
            };
            cfg.workload.events_per_process = self.scale.events();
            let r = run(&cfg);
            assert_eq!(r.final_pending, 0, "simulation must reach quiescence");
            agg.merge(&r.metrics.measured);
            sm_entries += r.metrics.sm_entries.mean();
            writes += r.metrics.writes as f64;
            reads += r.metrics.reads as f64;
            apply_latency += r.metrics.apply_latency_ns.mean() / 1e6;
            max_pending = max_pending.max(r.metrics.max_pending);
            local_meta += r.final_local_meta.iter().sum::<u64>() as f64
                / r.final_local_meta.len().max(1) as f64;
        }
        let sf = seeds as f64;
        CellStats {
            total_count: agg.total_count() as f64 / sf,
            total_bytes: agg.total_bytes() as f64 / sf,
            avg_bytes: [
                agg.avg_bytes(MsgKind::Sm),
                agg.avg_bytes(MsgKind::Fm),
                agg.avg_bytes(MsgKind::Rm),
            ],
            kind_bytes: [
                agg.bytes(MsgKind::Sm) as f64 / sf,
                agg.bytes(MsgKind::Fm) as f64 / sf,
                agg.bytes(MsgKind::Rm) as f64 / sf,
            ],
            sm_entries: sm_entries / sf,
            writes: writes / sf,
            reads: reads / sf,
            apply_latency_ms: apply_latency / sf,
            max_pending,
            local_meta_mean: local_meta / sf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_cached() {
        let mut sw = Sweep::new(Scale::Quick);
        let a = sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count;
        let b = sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count;
        assert_eq!(a, b);
        assert_eq!(sw.cache.len(), 1);
    }

    #[test]
    fn avg_bytes_indexing_matches_kind() {
        let mut sw = Sweep::new(Scale::Quick);
        let c = sw
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.5)
            .clone();
        assert!(c.avg(MsgKind::Sm) > 0.0);
        assert!(c.avg(MsgKind::Fm) > 0.0);
        assert!(c.avg(MsgKind::Rm) > c.avg(MsgKind::Fm));
    }

    #[test]
    fn schedules_match_across_protocols_same_cell() {
        // The seed derivation ignores the protocol: write/read counts of
        // Opt-Track (partial) and Opt-Track-CRP (full) cells coincide.
        let mut sw = Sweep::new(Scale::Quick);
        let a = sw
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.5)
            .writes;
        let b = sw
            .cell(ProtocolKind::OptTrackCrp, Mode::Full, 5, 0.5)
            .writes;
        assert_eq!(a, b, "Table IV replays identical schedules");
    }
}
