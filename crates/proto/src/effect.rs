//! Effects emitted by protocol state machines.

use crate::msg::Msg;
use causal_types::{SiteId, VarId, VersionedValue, WriteId};

/// An externally visible consequence of a protocol step. The driver (the
/// simulator or the threaded runtime) interprets these: `Send` goes to the
/// transport, `Applied` and `FetchDone` feed the execution history used for
/// metrics and consistency checking.
#[derive(Clone, PartialEq, Debug)]
pub enum Effect {
    /// Transmit `msg` to site `to` over the FIFO channel.
    Send {
        /// Destination site.
        to: SiteId,
        /// The message to deliver.
        msg: Msg,
    },
    /// An update was applied to the local replica of `var` (an
    /// `apply_i(w_j(x_h)v)` event in the paper's event taxonomy).
    Applied {
        /// The variable whose replica was updated.
        var: VarId,
        /// The write that was applied.
        write: WriteId,
    },
    /// A previously issued remote fetch completed; the pending read returns
    /// `value` (a `return_i(x_h, v)` event).
    FetchDone {
        /// The fetched variable.
        var: VarId,
        /// The fetched value, `None` for `⊥`.
        value: Option<VersionedValue>,
    },
}

/// Outcome of [`crate::ProtocolSite::read`].
#[derive(Clone, PartialEq, Debug)]
pub enum ReadResult {
    /// The variable is locally replicated; its current value (or `⊥`) is
    /// returned immediately.
    Local(Option<VersionedValue>),
    /// The variable is not replicated here. An FM was produced for the
    /// predesignated replica; the read blocks until the matching
    /// [`Effect::FetchDone`] is emitted by
    /// [`crate::ProtocolSite::on_message`].
    Fetch {
        /// The serving replica.
        target: SiteId,
        /// The fetch message to transmit.
        msg: Msg,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Fm;

    #[test]
    fn effects_are_comparable_for_test_assertions() {
        let a = Effect::Applied {
            var: VarId(1),
            write: WriteId::new(SiteId(0), 1),
        };
        assert_eq!(a.clone(), a);
        let f = ReadResult::Fetch {
            target: SiteId(2),
            msg: Msg::Fm(Fm { var: VarId(1) }),
        };
        assert_ne!(
            f,
            ReadResult::Local(None),
            "fetch and local results are distinct"
        );
    }
}
