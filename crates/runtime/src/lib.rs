//! # causal-runtime
//!
//! A real multi-threaded runtime for the causal-consistency protocols: a
//! sharded M:N scheduler (a fixed pool of `W` worker threads multiplexing
//! the `n` sites, `W = n` emulating the old thread-per-site fabric), a
//! transport fabric between the workers (crossbeam FIFO channels or a
//! multiplexed loopback-TCP mesh with one socket per worker pair and
//! coalesced writes), and two ways to drive operations — wall-clock
//! schedule replay (scaled) and the closed-loop load generator behind
//! [`serve`] (budget- or duration-bounded).
//!
//! The paper's testbed ran each site as a JDK process over TCP; this runtime
//! is the analogous live deployment of the *identical* protocol objects that
//! the discrete-event simulator drives. It demonstrates that the protocol
//! state machines are genuinely transport-agnostic and correct under real
//! concurrency — executions are nondeterministic, and every one of them
//! must still pass the `causal-checker` verification — and, in replay mode,
//! it mirrors the simulator's measured-window attribution op for op, so a
//! real-cluster run's message counts can be checked against simnet's
//! prediction for the same workload and seed (see DESIGN.md §2,
//! docs/RUNTIME.md, and EXPERIMENTS.md "Real-cluster serving").
//!
//! ## Shutdown protocol
//!
//! Quiescence in a live system needs care: a site may finish its schedule
//! while its updates are still in flight. The runtime counts in-flight
//! messages with an atomic; when every site has finished its schedule and
//! the in-flight count stays zero for a settle window, the coordinator —
//! parked on a condvar the last decrement notifies, not a sleep-poll —
//! broadcasts `Stop` and joins the worker pool. A parked update at that
//! point would be a protocol bug (reported in
//! [`RunOutcome::final_pending`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod loadgen;
pub mod node;
pub mod runner;
pub mod serve;
pub mod tcp;

pub use loadgen::LoadProfile;
pub use node::BatchWindow;
pub use runner::{run_threaded, RunOutcome, RuntimeConfig};
pub use serve::{serve, ServeConfig, ServeReport, ServeTransport};
pub use tcp::run_tcp;
