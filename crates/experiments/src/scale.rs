//! Scaling sweep: the sharded M:N runtime vs. thread-per-site emulation.
//!
//! `repro scale` answers the question the runtime redesign was for: what
//! does the old fabric's thread count cost, and does the worker-pool
//! runtime hold throughput while shedding it? For each system size it runs
//! the same duration-bounded closed-loop load over loopback TCP twice —
//! once with `workers = n` (one worker per site plus a reader/writer pair
//! per directed socket: the old thread-per-site fabric, faithfully
//! emulated) and once with a fixed pool of [`SHARDED_WORKERS`] workers
//! multiplexing every site over one socket per worker pair — and reports
//! threads spawned, completed ops, ops/s, latency tails, coalesced write
//! syscalls, and peak mailbox depth side by side.
//!
//! The sweep is also a gate, not just a table:
//!
//! * every cell must drain, stay connection-error free, and pass the
//!   causal-consistency checker;
//! * thread counts must equal the closed forms exactly
//!   (`n + 2n(n-1)` old, `W + 2W(W-1)` new) — the new fabric's count is
//!   independent of `n`, which is the whole point;
//! * the sharded fabric must hold at least [`MIN_THROUGHPUT_RATIO`] of the
//!   per-site fabric's throughput at every size (the ratio is recorded in
//!   the artifact so regressions are visible before they trip the floor);
//! * one sim-vs-real replay parity check (Opt-Track, n = 8) re-asserts
//!   that the scheduler rewrite did not perturb protocol behavior: message
//!   counts must match the simulator exactly.
//!
//! The table lands in `BENCH_PR10.json` (in `--out` or the working
//! directory) together with the host's available parallelism.

use causal_checker::check;
use causal_metrics::Table;
use causal_proto::ProtocolKind;
use causal_runtime::{run_tcp, RuntimeConfig, ServeConfig, ServeTransport};
use causal_simnet::SimConfig;
use causal_types::MsgKind;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::Scale;

/// Pool size for the sharded cells. Fixed (not auto) so the expected
/// thread count is host-independent: `4 + 2·4·3 = 28` threads over TCP at
/// every `n`.
pub const SHARDED_WORKERS: usize = 4;

/// Minimum sharded-over-per-site throughput ratio per size. The design
/// target is ≥ 1.0 (no regression); the gate sits lower because both
/// cells share one noisy host, and the measured ratio is recorded in the
/// artifact.
pub const MIN_THROUGHPUT_RATIO: f64 = 0.5;

/// The protocol under load: Opt-Track is the paper's headline
/// partial-replication algorithm and exercises every runtime path —
/// multicast updates, blocking remote fetches, and the reply fast path.
const PROTOCOL: ProtocolKind = ProtocolKind::OptTrack;

/// Threads a TCP run spawns at pool size `w`: the workers plus a reader
/// and a writer per endpoint of each worker-pair socket.
fn tcp_threads(w: u64) -> u64 {
    w + 2 * w * (w - 1)
}

struct Cell {
    n: usize,
    fabric: &'static str,
    workers: usize,
    threads: u64,
    ops: u64,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    syscall_writes: u64,
    mailbox_peak: u64,
}

fn run_cell(scale: Scale, n: usize, fabric: &'static str, workers: usize) -> Cell {
    let mut cfg = ServeConfig::quick(PROTOCOL, n, ServeTransport::Tcp, 4242);
    cfg.workers = workers;
    cfg.load.clients_per_site = 2;
    cfg.load.ops_per_client = 1 << 30; // safety cap; the deadline bounds the run
    cfg.load.duration = Some(match scale {
        Scale::Paper => Duration::from_millis(2000),
        Scale::Quick => Duration::from_millis(250),
    });
    cfg.load.think = Duration::from_micros(200);
    let tag = format!("scale n={n} {fabric} (W={workers})");
    eprintln!("[scale] {tag} …");
    let r = causal_runtime::serve(&cfg).unwrap_or_else(|e| panic!("{tag}: serve failed: {e:?}"));
    assert!(r.ops > 0, "{tag}: the deadline must leave room for ops");
    assert_eq!(r.final_pending, 0, "{tag}: run must drain");
    assert_eq!(
        r.metrics.transport_conn_errors, 0,
        "{tag}: healthy mesh, no connection errors"
    );
    assert_eq!(
        r.metrics.threads_spawned,
        tcp_threads(workers as u64),
        "{tag}: thread count must match the closed form"
    );
    let v = check(&r.history);
    assert!(v.protocol_clean(), "{tag}: causal violations: {v:?}");
    Cell {
        n,
        fabric,
        workers,
        threads: r.metrics.threads_spawned,
        ops: r.ops,
        ops_per_sec: r.ops_per_sec(),
        p50_us: r.latency.p50_us,
        p99_us: r.latency.p99_us,
        syscall_writes: r.metrics.syscall_writes,
        mailbox_peak: r.metrics.mailbox_depth_peak,
    }
}

/// Replay parity at n = 8: the sharded scheduler must reproduce the
/// simulator's message counts exactly (same workload, same seed), as the
/// PR9 serving sweep established for the thread-per-site runtime.
fn parity_gate(scale: Scale) {
    let (n, w, seed) = (8usize, 0.3, 7u64);
    let events = match scale {
        Scale::Paper => 120,
        Scale::Quick => 40,
    };
    eprintln!("[scale] parity: {PROTOCOL} n={n} ({events} events/process) …");
    let mut sim_cfg = SimConfig::paper_partial(PROTOCOL, n, w, seed);
    sim_cfg.workload.events_per_process = events;
    let sim = causal_simnet::run(&sim_cfg);
    let real_cfg = RuntimeConfig::fast(PROTOCOL, n, w, seed, events);
    let real = run_tcp(&real_cfg).unwrap_or_else(|e| panic!("parity: tcp replay: {e:?}"));
    assert_eq!(real.final_pending, 0, "parity: replay must drain");
    assert_eq!(sim.metrics.writes, real.metrics.writes, "parity: writes");
    assert_eq!(sim.metrics.reads, real.metrics.reads, "parity: reads");
    assert_eq!(
        sim.metrics.remote_reads, real.metrics.remote_reads,
        "parity: remote reads"
    );
    for mk in [MsgKind::Sm, MsgKind::Fm, MsgKind::Rm] {
        assert_eq!(
            sim.metrics.all.count(mk),
            real.metrics.all.count(mk),
            "parity: total {mk:?} count"
        );
        assert_eq!(
            sim.metrics.measured.count(mk),
            real.metrics.measured.count(mk),
            "parity: measured {mk:?} count"
        );
    }
}

/// The `repro scale` job: parity gate first, then the old-vs-new fabric
/// sweep, then the `BENCH_PR10.json` artifact.
pub fn scale_sweep(scale: Scale, out: Option<&Path>) -> Table {
    parity_gate(scale);

    let ns: &[usize] = match scale {
        Scale::Paper => &[8, 16, 40],
        Scale::Quick => &[8, 16, 40],
    };
    let mut cells = Vec::new();
    for &n in ns {
        // The per-site fabric's socket mesh grows as n^2 (3,160 threads at
        // n = 40); at quick scale the largest size runs sharded-only and
        // the emulation ceiling is measured at the sizes CI can afford.
        let run_per_site = scale == Scale::Paper || n <= 16;
        let per_site = run_per_site.then(|| run_cell(scale, n, "per-site", n));
        let sharded = run_cell(scale, n, "sharded", SHARDED_WORKERS.min(n));
        assert!(
            sharded.threads < n as u64 || n as u64 <= tcp_threads(SHARDED_WORKERS as u64),
            "n={n}: sharded fabric must need fewer threads than sites"
        );
        if let Some(ref old) = per_site {
            assert!(
                sharded.threads < old.threads,
                "n={n}: sharding must shed threads ({} vs {})",
                sharded.threads,
                old.threads
            );
            let ratio = sharded.ops_per_sec / old.ops_per_sec.max(1e-9);
            eprintln!("[scale] n={n}: sharded/per-site throughput ratio {ratio:.2}");
            assert!(
                ratio >= MIN_THROUGHPUT_RATIO,
                "n={n}: sharded fabric lost throughput ({:.0} vs {:.0} ops/s)",
                sharded.ops_per_sec,
                old.ops_per_sec
            );
        } else {
            eprintln!("[scale] n={n}: skipping per-site cell at quick scale");
        }
        cells.extend(per_site);
        cells.push(sharded);
    }

    let mut t = Table::new(
        format!(
            "Scaling: {PROTOCOL} over TCP, duration-bounded closed loop — \
             thread-per-site (W=n) vs sharded (W={SHARDED_WORKERS}) fabric"
        ),
        &[
            "n",
            "fabric",
            "workers",
            "threads",
            "ops",
            "ops/s",
            "p50 us",
            "p99 us",
            "sys writes",
            "mbox peak",
        ],
    );
    let mut cell_lines = String::new();
    for (i, c) in cells.iter().enumerate() {
        t.push_row(vec![
            c.n.to_string(),
            c.fabric.to_string(),
            c.workers.to_string(),
            c.threads.to_string(),
            c.ops.to_string(),
            format!("{:.0}", c.ops_per_sec),
            format!("{:.0}", c.p50_us),
            format!("{:.0}", c.p99_us),
            c.syscall_writes.to_string(),
            c.mailbox_peak.to_string(),
        ]);
        let _ = writeln!(
            cell_lines,
            "    {{ \"n\": {}, \"fabric\": \"{}\", \"workers\": {}, \"threads\": {}, \
             \"ops\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"syscall_writes\": {}, \"mailbox_depth_peak\": {} }}{}",
            c.n,
            c.fabric,
            c.workers,
            c.threads,
            c.ops,
            c.ops_per_sec,
            c.p50_us,
            c.p99_us,
            c.syscall_writes,
            c.mailbox_peak,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let scale_name = match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"protocol\": \"{PROTOCOL}\",\n  \
         \"host\": {{ \"available_parallelism\": {host_parallelism} }},\n  \
         \"sharded_workers\": {SHARDED_WORKERS},\n  \"cells\": [\n{cell_lines}  ]\n}}\n"
    );
    let path = out
        .map(|d| d.join("BENCH_PR10.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_PR10.json"));
    std::fs::write(&path, &json).expect("write BENCH_PR10.json");
    eprintln!("[scale] wrote {}", path.display());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_gates_and_reports() {
        let dir = std::env::temp_dir().join(format!("scale-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The asserts inside scale_sweep (thread closed forms, drains,
        // checker, parity, throughput floor) are the test.
        let t = scale_sweep(Scale::Quick, Some(&dir));
        let csv = t.to_csv();
        assert!(csv.contains("per-site") && csv.contains("sharded"));
        assert!(csv.contains("40,sharded,4,28,"), "n=40 runs on 28 threads");
        let json = std::fs::read_to_string(dir.join("BENCH_PR10.json")).unwrap();
        assert!(json.contains("\"sharded_workers\": 4"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
