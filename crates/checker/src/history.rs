//! Execution-history recording.

use causal_types::{SiteId, VarId, WriteId};

/// One operation in a process's local history `h_i`, in program order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpRecord {
    /// `w_i(x)v` — the process issued a write.
    Write {
        /// The write's identity (`⟨site, clock⟩`).
        write: WriteId,
        /// The written variable.
        var: VarId,
    },
    /// `r_i(x)v` — the process issued a read.
    Read {
        /// The read variable.
        var: VarId,
        /// The write whose value was returned, `None` for `⊥`.
        read_from: Option<WriteId>,
        /// The replica that served the read (self for local reads).
        served_by: SiteId,
    },
}

/// A recorded multi-site execution: per-process operation sequences plus
/// per-site apply sequences. Drivers (the simulator, the threaded runtime
/// and `LocalCluster`-based tests) populate this during a run and hand it to
/// [`crate::check`] afterwards.
#[derive(Clone, Debug)]
pub struct History {
    n: usize,
    ops: Vec<Vec<OpRecord>>,
    applies: Vec<Vec<WriteId>>,
    /// Per-site `(ops, applies)` lengths at the moment the site left the
    /// membership view (`None` = never left). Records past the watermark
    /// are out-of-view activity the checker flags.
    sealed: Vec<Option<(usize, usize)>>,
}

impl History {
    /// Empty history for an `n`-site system.
    pub fn new(n: usize) -> Self {
        History {
            n,
            ops: vec![Vec::new(); n],
            applies: vec![Vec::new(); n],
            sealed: vec![None; n],
        }
    }

    /// Number of sites.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record that `site` issued `write` on `var`.
    pub fn record_write(&mut self, site: SiteId, write: WriteId, var: VarId) {
        self.ops[site.index()].push(OpRecord::Write { write, var });
    }

    /// Record that `site` read `var`, observing `read_from`, served by
    /// `served_by`.
    pub fn record_read(
        &mut self,
        site: SiteId,
        var: VarId,
        read_from: Option<WriteId>,
        served_by: SiteId,
    ) {
        self.ops[site.index()].push(OpRecord::Read {
            var,
            read_from,
            served_by,
        });
    }

    /// Record that `site` applied `write` to its replica (in apply order).
    pub fn record_apply(&mut self, site: SiteId, write: WriteId) {
        self.applies[site.index()].push(write);
    }

    /// Seal `site`'s history at its current length: the site left the
    /// membership view, so any operation or apply recorded after this point
    /// is out-of-view activity (a departed site still mutating state). The
    /// first seal wins — a site cannot rejoin under the churn model.
    pub fn seal_site(&mut self, site: SiteId) {
        let i = site.index();
        if self.sealed[i].is_none() {
            self.sealed[i] = Some((self.ops[i].len(), self.applies[i].len()));
        }
    }

    /// Per-site seal watermarks (`None` = the site never left the view).
    pub fn sealed(&self) -> &[Option<(usize, usize)>] {
        &self.sealed
    }

    /// Per-process operation sequences.
    pub fn ops(&self) -> &[Vec<OpRecord>] {
        &self.ops
    }

    /// Per-site apply sequences.
    pub fn applies(&self) -> &[Vec<WriteId>] {
        &self.applies
    }

    /// Fold another history's records into this one. Used by the threaded
    /// runtime, where each site thread records its own operations and
    /// applies into a private `History` and the coordinator combines them.
    /// Panics if both histories recorded events for the same site.
    pub fn absorb(&mut self, other: History) {
        assert_eq!(self.n, other.n);
        for (i, ops) in other.ops.into_iter().enumerate() {
            if !ops.is_empty() {
                assert!(
                    self.ops[i].is_empty(),
                    "two histories recorded ops for site {i}"
                );
                self.ops[i] = ops;
            }
        }
        for (i, applies) in other.applies.into_iter().enumerate() {
            if !applies.is_empty() {
                assert!(
                    self.applies[i].is_empty(),
                    "two histories recorded applies for site {i}"
                );
                self.applies[i] = applies;
            }
        }
        for (i, seal) in other.sealed.into_iter().enumerate() {
            if self.sealed[i].is_none() {
                self.sealed[i] = seal;
            }
        }
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(|v| v.len()).sum()
    }

    /// Total applies recorded.
    pub fn total_applies(&self) -> usize {
        self.applies.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates_in_order() {
        let mut h = History::new(2);
        let w = WriteId::new(SiteId(0), 1);
        h.record_write(SiteId(0), w, VarId(3));
        h.record_read(SiteId(1), VarId(3), Some(w), SiteId(1));
        h.record_apply(SiteId(0), w);
        h.record_apply(SiteId(1), w);
        assert_eq!(h.total_ops(), 2);
        assert_eq!(h.total_applies(), 2);
        assert_eq!(h.ops()[0].len(), 1);
        assert_eq!(h.applies()[1], vec![w]);
    }
}
