//! End-to-end correctness of the simulated protocols.
//!
//! Every test runs full simulations (scheduling, latency, buffering,
//! fetches) and validates the executions with the independent checker in
//! `causal-checker`. These are the tests that would catch a re-derivation
//! error in any of the four protocols.

use causal_checker::check;
use causal_proto::ProtocolKind;
use causal_simnet::{run, LatencyModel, SimConfig};
use causal_types::MsgKind;

fn small(protocol: ProtocolKind, n: usize, w_rate: f64, seed: u64, partial: bool) -> SimConfig {
    let cfg = if partial {
        SimConfig::paper_partial(protocol, n, w_rate, seed)
    } else {
        SimConfig::paper_full(protocol, n, w_rate, seed)
    };
    cfg.small().with_history()
}

#[test]
fn all_protocols_reach_quiescence() {
    for (kind, partial) in [
        (ProtocolKind::FullTrack, true),
        (ProtocolKind::OptTrack, true),
        (ProtocolKind::OptTrackCrp, false),
        (ProtocolKind::OptP, false),
    ] {
        let r = run(&small(kind, 6, 0.5, 1, partial));
        assert_eq!(r.final_pending, 0, "{kind}: parked updates never applied");
        assert!(r.duration.as_millis() > 0);
    }
}

#[test]
fn full_replication_protocols_are_strictly_causal() {
    // Under full replication every read is local, so the executions must
    // satisfy strict causal memory — across many seeds.
    for kind in [ProtocolKind::OptTrackCrp, ProtocolKind::OptP] {
        for seed in 0..8 {
            for w_rate in [0.2, 0.5, 0.8] {
                let r = run(&small(kind, 6, w_rate, seed, false));
                let v = check(r.history.as_ref().unwrap());
                assert!(
                    v.strictly_clean(),
                    "{kind} seed {seed} w {w_rate}: {:?}",
                    v.examples
                );
            }
        }
    }
}

#[test]
fn partial_replication_protocols_deliver_causally() {
    // The activation predicate's guarantee (causal apply order, FIFO,
    // reads-from integrity) must hold for every seed. Stale remote reads
    // are tolerated by `protocol_clean` (see causal-checker docs) but
    // delivery violations never are.
    for kind in [ProtocolKind::FullTrack, ProtocolKind::OptTrack] {
        for seed in 0..8 {
            for w_rate in [0.2, 0.5, 0.8] {
                let r = run(&small(kind, 8, w_rate, seed, true));
                assert_eq!(r.final_pending, 0, "{kind} seed {seed}");
                let v = check(r.history.as_ref().unwrap());
                assert!(
                    v.protocol_clean(),
                    "{kind} seed {seed} w {w_rate}: {:?}",
                    v.examples
                );
            }
        }
    }
}

#[test]
fn partial_protocols_are_strict_under_benign_latency() {
    // With constant latency and the paper's multi-second operation gaps,
    // updates always land before dependent reads, so even the remote-read
    // path should be strictly causal.
    for kind in [ProtocolKind::FullTrack, ProtocolKind::OptTrack] {
        for seed in 0..4 {
            let mut cfg = small(kind, 6, 0.5, seed, true);
            cfg.latency = LatencyModel::Constant { micros: 100 };
            let r = run(&cfg);
            let v = check(r.history.as_ref().unwrap());
            assert!(v.strictly_clean(), "{kind} seed {seed}: {:?}", v.examples);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    for (kind, partial) in [(ProtocolKind::OptTrack, true), (ProtocolKind::OptP, false)] {
        let a = run(&small(kind, 5, 0.5, 42, partial));
        let b = run(&small(kind, 5, 0.5, 42, partial));
        assert_eq!(a.metrics.measured, b.metrics.measured);
        assert_eq!(a.metrics.all, b.metrics.all);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.metrics.applies, b.metrics.applies);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(&small(ProtocolKind::OptTrack, 5, 0.5, 1, true));
    let b = run(&small(ProtocolKind::OptTrack, 5, 0.5, 2, true));
    assert_ne!(a.metrics.all, b.metrics.all);
}

#[test]
fn full_replication_generates_no_fetch_traffic() {
    for kind in [ProtocolKind::OptTrackCrp, ProtocolKind::OptP] {
        let r = run(&small(kind, 5, 0.5, 3, false));
        assert_eq!(r.metrics.all.count(MsgKind::Fm), 0);
        assert_eq!(r.metrics.all.count(MsgKind::Rm), 0);
        assert!(r.metrics.all.count(MsgKind::Sm) > 0);
    }
}

#[test]
fn partial_replication_fetch_traffic_is_paired() {
    let r = run(&small(ProtocolKind::OptTrack, 10, 0.2, 4, true));
    assert_eq!(
        r.metrics.all.count(MsgKind::Fm),
        r.metrics.all.count(MsgKind::Rm),
        "every FM gets exactly one RM"
    );
    assert!(
        r.metrics.all.count(MsgKind::Fm) > 0,
        "remote reads must occur"
    );
    assert_eq!(
        r.metrics.remote_reads,
        r.metrics.measured.count(MsgKind::Fm),
        "measured remote reads correspond to measured FMs"
    );
}

#[test]
fn message_count_matches_paper_formula() {
    // Paper §V-A: expected message count per write is (p-1) + (n-p)/n and
    // per read 2(n-p)/n. Empirical counts over a full run should land close
    // to the expectation.
    let n = 10;
    let r = run(&SimConfig::paper_partial(ProtocolKind::OptTrack, n, 0.5, 7).with_history());
    let m = &r.metrics;
    let p = 3.0;
    let nf = n as f64;
    let writes = m.writes as f64;
    let reads = m.reads as f64;
    let expected = ((p - 1.0) + (nf - p) / nf) * writes + 2.0 * reads * (nf - p) / nf;
    let got = m.measured.total_count() as f64;
    let rel = (got - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "count {got} vs formula {expected} (rel err {rel:.3})"
    );
}

#[test]
fn optp_average_sm_size_matches_table_iii() {
    for n in [5usize, 10, 20] {
        let r = run(&SimConfig::paper_full(ProtocolKind::OptP, n, 0.5, 5).small());
        let avg = r.metrics.measured.avg_bytes(MsgKind::Sm).unwrap();
        let expected = 209.0 + 10.0 * n as f64;
        assert!(
            (avg - expected).abs() < 1e-9,
            "n={n}: avg {avg} vs {expected}"
        );
    }
}

#[test]
fn full_track_sm_size_is_quadratic_constant() {
    // Full-Track piggybacks the whole matrix on every SM: size is exactly
    // base + 10·n² under the Java-like model.
    let n = 8;
    let r = run(&small(ProtocolKind::FullTrack, n, 0.5, 6, true));
    let avg = r.metrics.measured.avg_bytes(MsgKind::Sm).unwrap();
    assert!((avg - (209.0 + 10.0 * (n * n) as f64)).abs() < 1e-9);
}

#[test]
fn opt_track_sm_smaller_than_full_track_at_scale() {
    let n = 20;
    let ot = run(&small(ProtocolKind::OptTrack, n, 0.5, 8, true));
    let ft = run(&small(ProtocolKind::FullTrack, n, 0.5, 8, true));
    let ot_avg = ot.metrics.measured.avg_bytes(MsgKind::Sm).unwrap();
    let ft_avg = ft.metrics.measured.avg_bytes(MsgKind::Sm).unwrap();
    // At this miniature scale (60 events/process) the Opt-Track log has
    // not fully amortized; the paper's 600-event runs reach ≈0.3. Assert
    // the direction with margin here; the experiments regenerate Table II
    // at full scale.
    assert!(
        ot_avg < ft_avg * 0.75,
        "Opt-Track {ot_avg:.0}B vs Full-Track {ft_avg:.0}B"
    );
}

#[test]
fn crp_sm_smaller_than_optp_at_scale() {
    let n = 20;
    let crp = run(&small(ProtocolKind::OptTrackCrp, n, 0.8, 9, false));
    let optp = run(&small(ProtocolKind::OptP, n, 0.8, 9, false));
    let a = crp.metrics.measured.avg_bytes(MsgKind::Sm).unwrap();
    let b = optp.metrics.measured.avg_bytes(MsgKind::Sm).unwrap();
    assert!(a < b, "CRP {a:.1}B vs optP {b:.1}B");
}

#[test]
fn warmup_exclusion_reduces_measured_traffic() {
    let r = run(&small(ProtocolKind::OptTrack, 6, 0.5, 10, true));
    assert!(r.metrics.measured.total_count() < r.metrics.all.total_count());
    // Roughly 15% of ops are warm-up; measured traffic should be within
    // a loose band around 85% of the total.
    let frac = r.metrics.measured.total_count() as f64 / r.metrics.all.total_count() as f64;
    assert!((0.7..0.95).contains(&frac), "measured fraction {frac}");
}

#[test]
fn applies_account_for_every_destination() {
    // Every write must eventually be applied at every replica of its
    // variable (quiescence + counting).
    let n = 6;
    let cfg = small(ProtocolKind::OptTrack, n, 1.0, 11, true);
    let r = run(&cfg);
    // With w_rate = 1.0, ops = writes; each applies at p = 2 replicas
    // (n = 6 → p = round(1.8) = 2).
    let writes = 6 * 60;
    assert_eq!(r.metrics.applies, (writes * 2) as u64);
}

#[test]
fn geo_ring_latency_still_causally_consistent() {
    let mut cfg = small(ProtocolKind::OptTrack, 8, 0.5, 12, true);
    cfg.latency = LatencyModel::GeoRing {
        base_micros: 5_000,
        per_hop_micros: 20_000,
        jitter_micros: 10_000,
    };
    let r = run(&cfg);
    assert_eq!(r.final_pending, 0);
    let v = check(r.history.as_ref().unwrap());
    assert!(v.protocol_clean(), "{:?}", v.examples);
}

#[test]
fn extreme_read_only_workload() {
    // No writes at all: no SMs, every value reads ⊥, nothing pending.
    let r = run(&small(ProtocolKind::OptTrack, 5, 0.0, 13, true));
    assert_eq!(r.metrics.all.count(MsgKind::Sm), 0);
    assert_eq!(r.metrics.applies, 0);
    assert_eq!(r.final_pending, 0);
    let v = check(r.history.as_ref().unwrap());
    assert!(v.strictly_clean(), "{:?}", v.examples);
}

#[test]
fn single_site_system_degenerates_gracefully() {
    let r = run(&small(ProtocolKind::OptTrackCrp, 1, 0.5, 14, false));
    assert_eq!(r.metrics.all.total_count(), 0, "nobody to talk to");
    let v = check(r.history.as_ref().unwrap());
    assert!(v.strictly_clean());
}

#[test]
fn hb_track_is_causal_but_slower_to_apply() {
    // HB-Track (merge-at-receipt, Lamport's →) is a conservative superset
    // of Full-Track's →co tracking: still causally consistent, but it
    // parks updates behind false dependencies. Under a slow WAN the extra
    // delay must be visible; correctness must be unaffected.
    let mut hb = small(ProtocolKind::HbTrack, 10, 0.5, 21, true);
    hb.latency = LatencyModel::Uniform {
        min_micros: 100_000,
        max_micros: 1_500_000,
    };
    let mut ft = small(ProtocolKind::FullTrack, 10, 0.5, 21, true);
    ft.latency = hb.latency;

    let hb_r = run(&hb);
    let ft_r = run(&ft);
    assert_eq!(
        hb_r.final_pending, 0,
        "false dependencies are all satisfiable"
    );
    let v = check(hb_r.history.as_ref().unwrap());
    assert!(v.protocol_clean(), "{:?}", v.examples);

    assert!(
        hb_r.metrics.apply_latency_ns.mean() >= ft_r.metrics.apply_latency_ns.mean(),
        "HB-Track must never apply faster on average ({} vs {})",
        hb_r.metrics.apply_latency_ns.mean(),
        ft_r.metrics.apply_latency_ns.mean()
    );
    // Identical message pattern and SM sizes: only the waiting differs.
    // (RM bytes differ by design: HB-Track's remote returns always carry
    // the full matrix, Full-Track's carry LastWriteOn⟨h⟩.)
    for kind in [MsgKind::Sm, MsgKind::Fm, MsgKind::Rm] {
        assert_eq!(hb_r.metrics.all.count(kind), ft_r.metrics.all.count(kind));
    }
    assert_eq!(
        hb_r.metrics.all.bytes(MsgKind::Sm),
        ft_r.metrics.all.bytes(MsgKind::Sm)
    );
}
