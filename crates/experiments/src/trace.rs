//! Post-hoc analysis of structured simulation traces.
//!
//! A trace (see `causal-obs`) is a flat, sim-time-ordered stream of events
//! carrying full identifiers — `(site, origin, clock, var)` — so the causal
//! story of any write can be reconstructed without re-running the
//! simulation. This module closes the loop back to the independent checker:
//! [`history_from_trace`] rebuilds a [`History`] purely from the trace's
//! write/apply/read events, and [`check_trace`] validates it with
//! `causal-checker` exactly as a recorded in-sim history would be. A trace
//! that reproduces a checker-clean history is evidence the trace itself is
//! complete and correctly ordered — the acceptance gate for the tracing
//! subsystem.

use causal_checker::{check, History, Violations};
use causal_obs::{parse_jsonl, to_jsonl, EventKind, TraceEvent};
use causal_types::WriteId;
use std::path::Path;

/// Rebuild an execution history purely from trace events.
///
/// Uses only the four operation-level kinds — `write`, `apply`,
/// `read_local`, `fetch_done` — which the simulator emits in exactly the
/// order it records its own [`History`], so the reconstruction is
/// record-for-record identical to an in-sim recording of the same run.
pub fn history_from_trace(events: &[TraceEvent], n: usize) -> History {
    let mut h = History::new(n);
    for e in events {
        match e.kind {
            EventKind::Write { var, clock } => {
                h.record_write(e.site, WriteId::new(e.site, clock), var);
            }
            EventKind::Apply { origin, clock, .. } => {
                h.record_apply(e.site, WriteId::new(origin, clock));
            }
            EventKind::ReadLocal { var, writer } => {
                h.record_read(e.site, var, writer, e.site);
            }
            EventKind::FetchDone {
                var,
                served_by,
                writer,
                ..
            } => {
                h.record_read(e.site, var, writer, served_by);
            }
            _ => {}
        }
    }
    h
}

/// Rebuild the history of `events` and run the causal-consistency checker
/// on it.
pub fn check_trace(events: &[TraceEvent], n: usize) -> Violations {
    check(&history_from_trace(events, n))
}

/// Serialize `events` to JSONL at `path` (atomically: temp file + rename,
/// so a crashed run never leaves a half-written trace).
pub fn write_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, to_jsonl(events))?;
    std::fs::rename(&tmp, path)
}

/// Load a JSONL trace from `path`.
pub fn read_trace(path: &Path) -> std::io::Result<Vec<TraceEvent>> {
    let text = std::fs::read_to_string(path)?;
    parse_jsonl(&text).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_obs::BufTracer;
    use causal_proto::ProtocolKind;
    use causal_simnet::{run_traced, SimConfig};

    fn traced_run(kind: ProtocolKind, partial: bool, seed: u64) -> (Vec<TraceEvent>, History) {
        let cfg = if partial {
            SimConfig::paper_partial(kind, 6, 0.5, seed)
        } else {
            SimConfig::paper_full(kind, 6, 0.5, seed)
        }
        .small()
        .with_history();
        let mut tracer = BufTracer::default();
        let r = run_traced(&cfg, &mut tracer);
        (tracer.events, r.history.expect("recorded"))
    }

    #[test]
    fn reconstructed_history_matches_the_recorded_one() {
        for (kind, partial) in [
            (ProtocolKind::FullTrack, true),
            (ProtocolKind::OptTrack, true),
            (ProtocolKind::OptP, false),
        ] {
            let (events, recorded) = traced_run(kind, partial, 17);
            let rebuilt = history_from_trace(&events, 6);
            assert_eq!(
                rebuilt.total_ops(),
                recorded.total_ops(),
                "{kind}: op counts diverge"
            );
            assert_eq!(
                rebuilt.total_applies(),
                recorded.total_applies(),
                "{kind}: apply counts diverge"
            );
            assert_eq!(rebuilt.ops(), recorded.ops(), "{kind}: op records diverge");
        }
    }

    #[test]
    fn reconstructed_history_passes_the_checker() {
        let (events, _) = traced_run(ProtocolKind::OptTrack, true, 23);
        let v = check_trace(&events, 6);
        assert!(v.protocol_clean(), "causal chains broken: {:?}", v.examples);
    }

    #[test]
    fn traces_round_trip_through_disk() {
        let (events, _) = traced_run(ProtocolKind::FullTrack, true, 29);
        let dir = std::env::temp_dir().join(format!("causal-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        write_trace(&path, &events).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back, events);
        std::fs::remove_dir_all(&dir).ok();
    }
}
