//! Protocol selection and construction.

use crate::full_track::FullTrack;
use crate::hb_track::HbTrack;
use crate::opt_track::OptTrack;
use crate::opt_track_crp::OptTrackCrp;
use crate::optp::OptP;
use crate::replication::Replication;
use crate::site::ProtocolSite;
use causal_clocks::PruneConfig;
use causal_types::SiteId;
use std::fmt;
use std::sync::Arc;

/// The four protocols of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolKind {
    /// Full-Track — partial replication, matrix clock (§III-A).
    FullTrack,
    /// Opt-Track — partial replication, KS log (§III-B).
    OptTrack,
    /// Opt-Track-CRP — full replication, 2-tuple log (§III-C).
    OptTrackCrp,
    /// optP — full replication, vector clock (Baldoni et al. \[13\]).
    OptP,
    /// HB-Track — happened-before baseline that merges clocks at receipt,
    /// exhibiting the false causality Full-Track eliminates (extension; not
    /// one of the paper's four measured protocols).
    HbTrack,
}

impl ProtocolKind {
    /// All four protocols, in the paper's presentation order.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::FullTrack,
        ProtocolKind::OptTrack,
        ProtocolKind::OptTrackCrp,
        ProtocolKind::OptP,
    ];

    /// `true` for the protocols that operate under partial replication.
    pub fn supports_partial(self) -> bool {
        matches!(
            self,
            ProtocolKind::FullTrack | ProtocolKind::OptTrack | ProtocolKind::HbTrack
        )
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolKind::FullTrack => "Full-Track",
            ProtocolKind::OptTrack => "Opt-Track",
            ProtocolKind::OptTrackCrp => "Opt-Track-CRP",
            ProtocolKind::OptP => "optP",
            ProtocolKind::HbTrack => "HB-Track",
        })
    }
}

/// Per-site protocol construction options.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolConfig {
    /// Pruning switches for Opt-Track (ignored by the other protocols).
    pub prune: PruneConfig,
}

/// Build one site's protocol state machine.
///
/// Panics if a full-replication protocol is paired with a partial placement
/// (the protocols' constructors enforce their own requirements).
pub fn build_site(
    kind: ProtocolKind,
    site: SiteId,
    repl: Arc<dyn Replication>,
    cfg: ProtocolConfig,
) -> Box<dyn ProtocolSite> {
    match kind {
        ProtocolKind::FullTrack => Box::new(FullTrack::new(site, repl)),
        ProtocolKind::OptTrack => Box::new(OptTrack::with_prune(site, repl, cfg.prune)),
        ProtocolKind::OptTrackCrp => Box::new(OptTrackCrp::new(site, repl)),
        ProtocolKind::OptP => Box::new(OptP::new(site, repl)),
        ProtocolKind::HbTrack => Box::new(HbTrack::new(site, repl)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::FullReplication;

    #[test]
    fn factory_builds_matching_kinds() {
        let repl: Arc<dyn Replication> = Arc::new(FullReplication::new(3));
        for kind in ProtocolKind::ALL {
            let site = build_site(kind, SiteId(0), repl.clone(), ProtocolConfig::default());
            assert_eq!(site.kind(), kind);
            assert_eq!(site.n(), 3);
            assert_eq!(site.site(), SiteId(0));
            assert_eq!(site.pending_len(), 0);
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ProtocolKind::FullTrack.to_string(), "Full-Track");
        assert_eq!(ProtocolKind::OptTrack.to_string(), "Opt-Track");
        assert_eq!(ProtocolKind::OptTrackCrp.to_string(), "Opt-Track-CRP");
        assert_eq!(ProtocolKind::OptP.to_string(), "optP");
    }

    #[test]
    fn partial_support_flags() {
        assert!(ProtocolKind::FullTrack.supports_partial());
        assert!(ProtocolKind::OptTrack.supports_partial());
        assert!(!ProtocolKind::OptTrackCrp.supports_partial());
        assert!(!ProtocolKind::OptP.supports_partial());
    }
}
