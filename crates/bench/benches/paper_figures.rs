//! One benchmark per paper table/figure.
//!
//! Each benchmark times the simulation work that regenerates the artifact
//! (at reduced scale so `cargo bench` stays tractable); the full-scale
//! numbers come from `cargo run --release -p causal-experiments --bin repro`.
//! Benchmark names match the experiment ids in DESIGN.md's per-experiment
//! index, so `cargo bench fig1` exercises exactly Fig. 1's pipeline.

use causal_bench::quick_cell;
use causal_proto::ProtocolKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Fig. 1 — the partial-replication total-ratio cell (both protocols).
fn fig1_partial_total_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_partial_total_ratio");
    g.sample_size(10);
    for n in [5usize, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let ot = quick_cell(ProtocolKind::OptTrack, n, 0.5, true, 1);
                let ft = quick_cell(ProtocolKind::FullTrack, n, 0.5, true, 1);
                black_box(
                    ot.metrics.measured.total_bytes() as f64
                        / ft.metrics.measured.total_bytes() as f64,
                )
            })
        });
    }
    g.finish();
}

/// Figs. 2–4 / Table II — average partial-replication message sizes.
fn fig2_4_partial_avg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_4_partial_avg");
    g.sample_size(10);
    for w in [0.2f64, 0.8] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let r = quick_cell(ProtocolKind::OptTrack, 10, w, true, 2);
                black_box(r.metrics.measured.avg_bytes(causal_types::MsgKind::Sm))
            })
        });
    }
    g.finish();
}

/// Table II — the Full-Track column (matrix piggyback cost).
fn table2_partial_avg_sm_rm(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_partial_avg_sm_rm");
    g.sample_size(10);
    g.bench_function("full_track_n20", |b| {
        b.iter(|| {
            black_box(
                quick_cell(ProtocolKind::FullTrack, 20, 0.5, true, 3)
                    .metrics
                    .measured,
            )
        })
    });
    g.finish();
}

/// Fig. 5 — the full-replication total-ratio cell.
fn fig5_full_total_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_full_total_ratio");
    g.sample_size(10);
    for n in [5usize, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let crp = quick_cell(ProtocolKind::OptTrackCrp, n, 0.5, false, 4);
                let op = quick_cell(ProtocolKind::OptP, n, 0.5, false, 4);
                black_box(
                    crp.metrics.measured.total_bytes() as f64
                        / op.metrics.measured.total_bytes() as f64,
                )
            })
        });
    }
    g.finish();
}

/// Figs. 6–8 / Table III — average full-replication SM sizes.
fn fig6_8_full_avg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_8_full_avg");
    g.sample_size(10);
    for w in [0.2f64, 0.8] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let r = quick_cell(ProtocolKind::OptTrackCrp, 20, w, false, 5);
                black_box(r.metrics.measured.avg_bytes(causal_types::MsgKind::Sm))
            })
        });
    }
    g.finish();
}

/// Table III — the optP baseline column.
fn table3_full_avg_sm(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_full_avg_sm");
    g.sample_size(10);
    g.bench_function("optp_n20", |b| {
        b.iter(|| {
            black_box(
                quick_cell(ProtocolKind::OptP, 20, 0.5, false, 6)
                    .metrics
                    .measured,
            )
        })
    });
    g.finish();
}

/// Table IV — message counts, partial vs full on the same schedule.
fn table4_message_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_message_count");
    g.sample_size(10);
    for w in [0.2f64, 0.8] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let part = quick_cell(ProtocolKind::OptTrack, 10, w, true, 7);
                let full = quick_cell(ProtocolKind::OptTrackCrp, 10, w, false, 7);
                black_box((
                    part.metrics.measured.total_count(),
                    full.metrics.measured.total_count(),
                ))
            })
        });
    }
    g.finish();
}

/// Eq. (2) — the crossover validation cells.
fn eq2_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq2_crossover");
    g.sample_size(10);
    g.bench_function("n10_bracket", |b| {
        b.iter(|| {
            let below = quick_cell(ProtocolKind::OptTrack, 10, 0.1, true, 8);
            let above = quick_cell(ProtocolKind::OptTrack, 10, 0.3, true, 8);
            black_box((
                below.metrics.measured.total_count(),
                above.metrics.measured.total_count(),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig1_partial_total_ratio,
    fig2_4_partial_avg,
    table2_partial_avg_sm_rm,
    fig5_full_total_ratio,
    fig6_8_full_avg,
    table3_full_avg_sm,
    table4_message_count,
    eq2_crossover,
);
criterion_main!(figures);
