//! # causal-checker
//!
//! An independent causal-consistency verifier for recorded executions.
//!
//! The protocols in `causal-proto` claim to implement causal memory: all
//! write operations related by the causality order `≺co` (program order ∪
//! reads-from, transitively closed) must be applied at every common
//! destination in `≺co` order. This crate rebuilds `≺co` from an execution
//! [`History`] — without looking at any protocol metadata — by assigning
//! every write a vector clock, and then checks:
//!
//! * **FIFO**: each site applies one origin's writes in clock order;
//! * **delivery order**: no site applies `w2` before `w1` when
//!   `w1 ≺co w2` (the activation predicate's guarantee — a violation here
//!   is a protocol bug);
//! * **reads-from integrity**: every read returns a value actually written
//!   to that variable;
//! * **read freshness** (strict causal memory): a read never returns a value
//!   causally overwritten in the reader's past. Remote fetches in the
//!   partially replicated protocols *can* violate this by design (FM
//!   messages carry no causal context — see the paper's Table I), so these
//!   are counted separately as [`Violations::stale_reads`] rather than
//!   lumped in with protocol bugs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod bruteforce;
pub mod dot;
pub mod history;
pub mod verify;

pub use bruteforce::delivery_inversions_bruteforce;
pub use dot::history_to_dot;
pub use history::{History, OpRecord};
pub use verify::{check, Violations};
