//! # causal-workload
//!
//! Operation-schedule generation for the simulation experiments.
//!
//! §IV-B/IV-C of the paper: every application process executes a
//! pre-generated random schedule of read/write events. Each run performs
//! `600·n` operation events in total (600 per process), the time between
//! two events is drawn uniformly from [5 ms, 2005 ms], an operation is a
//! write with probability `w_rate` (else a read), and the target variable is
//! drawn uniformly from the `q = 100` variables. The first 15 % of events
//! are treated as warm-up and excluded from measurement.
//!
//! Schedules are deterministic functions of a seed, so a single schedule can
//! be replayed under different protocols (Table IV replays the *same*
//! schedule under Opt-Track and Opt-Track-CRP) and different transports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod churn;
pub mod csv;
pub mod params;
pub mod schedule;

pub use churn::{ChurnEvent, ChurnOp, ChurnPlan};
pub use csv::{schedule_from_csv, schedule_to_csv};
pub use params::{VarDistribution, WorkloadParams};
pub use schedule::{generate, Schedule};
