//! Microbenchmarks of the Opt-Track hot paths reworked in the indexed-log
//! overhaul: KS-log merge/prune against the retained naive reference,
//! copy-on-write piggyback snapshots, incremental meta-size accounting, and
//! one end-to-end Opt-Track simulation cell.
//!
//! Under the vendored criterion shim each bench runs once as a smoke pass;
//! with the real crate these become proper statistical benchmarks. The
//! naive-vs-indexed pairs share identical inputs so their reports are
//! directly comparable.

use causal_clocks::{DestSet, Log, LogEntry, MatrixClock, NaiveLog, PruneConfig};
use causal_experiments::{Mode, Scale, Sweep};
use causal_proto::{wire, BatchedSm, Msg, ProtocolKind, Sm, SmBatch, SmMeta};
use causal_types::{MetaSized, SiteId, SizeModel, VarId, VersionedValue, WriteId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// A log shaped like a busy Opt-Track site's: `n_origins` runs, `per_origin`
/// entries each, destination sets of ~`dest_n` sites.
fn mk_indexed(n_origins: usize, per_origin: usize, dest_n: usize) -> Log {
    let mut log = Log::new();
    for o in 0..n_origins {
        for c in 1..=per_origin {
            let dests =
                DestSet::from_sites((0..dest_n).map(|k| SiteId::from((o + k + c) % dest_n.max(1))));
            log.upsert(LogEntry::new(SiteId::from(o), c as u64, dests));
        }
    }
    log
}

fn mk_naive(n_origins: usize, per_origin: usize, dest_n: usize) -> NaiveLog {
    let mut log = NaiveLog::new();
    for e in mk_indexed(n_origins, per_origin, dest_n).iter() {
        log.upsert(*e);
    }
    log
}

/// MERGE, indexed vs naive, on identical inputs (the apply/read hot path).
fn merge_indexed_vs_naive(c: &mut Criterion) {
    let cfg = PruneConfig::default();
    let mut g = c.benchmark_group("hotpath_merge");
    for n in [10usize, 40] {
        let (ai, bi) = (mk_indexed(n, 3, 12), mk_indexed(n, 4, 12));
        let (an, bn) = (mk_naive(n, 3, 12), mk_naive(n, 4, 12));
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |bench, _| {
            bench.iter(|| {
                let mut m = ai.clone();
                m.merge(black_box(&bi), cfg);
                black_box(m.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| {
                let mut m = an.clone();
                m.merge(black_box(&bn), cfg);
                black_box(m.len())
            })
        });
    }
    g.finish();
}

/// Implicit condition 1 (`prune_applied`) + PURGE, indexed vs naive.
fn prune_indexed_vs_naive(c: &mut Criterion) {
    let cfg = PruneConfig::default();
    let n = 40usize;
    let applied: Vec<u64> = (0..n as u64).map(|o| 2 + (o % 3)).collect();
    let li = mk_indexed(n, 4, 12);
    let ln = mk_naive(n, 4, 12);
    let mut g = c.benchmark_group("hotpath_prune");
    g.bench_function("indexed", |bench| {
        bench.iter(|| {
            let mut l = li.clone();
            l.prune_applied(SiteId(0), black_box(&applied));
            l.purge(cfg);
            black_box(l.len())
        })
    });
    g.bench_function("naive", |bench| {
        bench.iter(|| {
            let mut l = ln.clone();
            l.prune_applied(SiteId(0), black_box(&applied));
            l.purge(cfg);
            black_box(l.len())
        })
    });
    g.finish();
}

/// Taking a piggyback snapshot: the copy-on-write refcount bump every SM
/// fan-out now pays, against the deep clone it replaced.
fn piggyback_snapshot(c: &mut Criterion) {
    let log = Arc::new(mk_indexed(40, 3, 12));
    let mut g = c.benchmark_group("piggyback_snapshot");
    g.bench_function("arc_clone", |bench| {
        bench.iter(|| black_box(Arc::clone(black_box(&log))))
    });
    g.bench_function("deep_clone", |bench| {
        bench.iter(|| black_box((*black_box(&log)).clone()))
    });
    g.finish();
}

/// Meta-size accounting: the indexed log answers from two counters; the
/// naive log walks every entry.
fn meta_size_accounting(c: &mut Criterion) {
    let model = SizeModel::java_like();
    let li = mk_indexed(40, 4, 12);
    let ln = mk_naive(40, 4, 12);
    let mut g = c.benchmark_group("meta_size");
    g.bench_function("indexed_o1", |bench| {
        bench.iter(|| black_box(black_box(&li).meta_size(&model)))
    });
    g.bench_function("naive_recount", |bench| {
        bench.iter(|| black_box(black_box(&ln).meta_size(&model)))
    });
    g.finish();
}

/// One end-to-end Opt-Track simulation cell at quick scale — the unit the
/// `repro bench` wall-clock target (n = 40, w = 0.5) is made of. Everything
/// above composes into this number.
fn opt_track_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt_track_cell");
    g.sample_size(10);
    g.bench_function("quick_n40_w05", |bench| {
        bench.iter(|| {
            let mut sw = Sweep::new(Scale::Quick);
            let cell = sw.cell(ProtocolKind::OptTrack, Mode::Partial, 40, 0.5);
            black_box(cell.total_bytes)
        })
    });
    g.finish();
}

/// An Opt-Track SM with a paper-shaped log piggyback (n = 20 origins).
fn sample_opt_track_sm(clock: u64) -> Sm {
    let mut log = Log::new();
    for o in 0..20usize {
        log.upsert(LogEntry::new(
            SiteId::from(o),
            clock + o as u64,
            DestSet::from_sites([SiteId::from((o + 1) % 20), SiteId::from((o + 7) % 20)]),
        ));
    }
    Sm {
        var: VarId(3),
        value: VersionedValue::new(WriteId::new(SiteId(0), clock), 99),
        meta: SmMeta::OptTrack {
            clock,
            log: Arc::new(log),
        },
    }
}

/// `k` consecutive Full-Track SMs from one sender: each snapshot advances
/// the matrix by one send, so batched encoding pays one full matrix and
/// `k - 1` small deltas.
fn sample_matrix_run(n: usize, k: usize) -> Vec<Sm> {
    let mut m = MatrixClock::new(n);
    (0..k as u64)
        .map(|i| {
            m.increment(SiteId(0), SiteId::from((i as usize + 1) % n));
            Sm {
                var: VarId(i as u32 % 8),
                value: VersionedValue::new(WriteId::new(SiteId(0), i + 1), i),
                meta: SmMeta::FullTrack {
                    write: Arc::new(m.clone()),
                },
            }
        })
        .collect()
}

/// The flat wire codec: encode through the thread-local scratch (the
/// zero-allocation steady state) and total zero-copy decode, for the two
/// piggyback families.
fn wire_codec(c: &mut Criterion) {
    let opt = Msg::Sm(sample_opt_track_sm(40));
    let full = Msg::Sm(sample_matrix_run(20, 1).pop().unwrap());
    let mut g = c.benchmark_group("wire_codec");
    for (name, msg) in [("opt_track_sm", &opt), ("full_track_sm", &full)] {
        let bytes = wire::encode(msg);
        g.bench_function(format!("encode_{name}"), |bench| {
            bench.iter(|| wire::encode_with(black_box(msg), |b| black_box(b.len())))
        });
        g.bench_function(format!("decode_{name}"), |bench| {
            bench.iter(|| black_box(wire::decode(black_box(&bytes)).unwrap()))
        });
    }
    g.finish();
}

/// Batch-merge vs per-SM framing: one `SmBatch` frame of `k` updates
/// (full piggyback + deltas) against `k` individual SM frames — the
/// encode-side cost of the bytes the batch saves.
fn batch_merge(c: &mut Criterion) {
    let k = 16usize;
    let sms = sample_matrix_run(20, k);
    let batch = Msg::Batch(Arc::new(SmBatch {
        sms: sms
            .iter()
            .map(|sm| BatchedSm {
                sm: sm.clone(),
                measured: true,
            })
            .collect(),
    }));
    let singles: Vec<Msg> = sms.into_iter().map(Msg::Sm).collect();
    let batch_bytes = wire::encode(&batch);
    let mut g = c.benchmark_group("batch_merge");
    g.bench_function("batch_frame_16", |bench| {
        bench.iter(|| wire::encode_with(black_box(&batch), |b| black_box(b.len())))
    });
    g.bench_function("per_sm_frames_16", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for m in &singles {
                total += wire::encode_with(black_box(m), |b| b.len());
            }
            black_box(total)
        })
    });
    g.bench_function("decode_batch_16", |bench| {
        bench.iter(|| black_box(wire::decode(black_box(&batch_bytes)).unwrap()))
    });
    g.finish();
}

criterion_group!(
    hotpath,
    merge_indexed_vs_naive,
    prune_indexed_vs_naive,
    piggyback_snapshot,
    meta_size_accounting,
    opt_track_cell,
    wire_codec,
    batch_merge,
);
criterion_main!(hotpath);
