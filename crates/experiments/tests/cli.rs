//! CLI contract tests for the `repro` and `simulate` binaries: argument
//! validation exits with code 2 and a usage message, and parallel runs
//! produce byte-identical artifacts.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn simulate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .output()
        .expect("spawn simulate")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn repro_rejects_jobs_zero() {
    let out = repro(&["fig1", "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs must be at least 1"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn repro_rejects_non_numeric_jobs() {
    let out = repro(&["fig1", "--jobs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad value for --jobs"));
}

#[test]
fn repro_rejects_unknown_subcommand() {
    let out = repro(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand: fig99"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn repro_rejects_missing_subcommand_and_unknown_flag() {
    let out = repro(&["--quick"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing subcommand"));

    let out = repro(&["fig1", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument: --frobnicate"));
}

#[test]
fn repro_help_exits_zero() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
}

/// The parallel engine's acceptance property, end to end through the
/// binary: stdout and the written CSV of `--jobs 4` are byte-identical to
/// `--jobs 1`.
#[test]
fn repro_csv_identical_across_jobs() {
    let d1 = tmp_dir("seq");
    let d4 = tmp_dir("par");
    let seq = repro(&[
        "logsize",
        "--quick",
        "--no-cache",
        "--jobs",
        "1",
        "--out",
        d1.to_str().unwrap(),
    ]);
    assert!(seq.status.success(), "sequential run failed");
    let par = repro(&[
        "logsize",
        "--quick",
        "--no-cache",
        "--jobs",
        "4",
        "--out",
        d4.to_str().unwrap(),
    ]);
    assert!(par.status.success(), "parallel run failed");
    assert_eq!(
        seq.stdout, par.stdout,
        "rendered table must be byte-identical across job counts"
    );
    let c1 = std::fs::read(d1.join("logsize.csv")).expect("sequential CSV");
    let c4 = std::fs::read(d4.join("logsize.csv")).expect("parallel CSV");
    assert_eq!(c1, c4, "CSV must be byte-identical across job counts");
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
}

/// Byte-identity guard against committed goldens: the quick-scale sweep
/// tables (paper figure 1, chaos, durability) must reproduce the committed
/// output exactly. These goldens were captured before the indexed-log /
/// copy-on-write overhaul, so any numeric drift in them means a protocol
/// semantics change, not a refactor — regenerate them only with a
/// documented simulation-behaviour change.
#[test]
fn repro_quick_tables_match_committed_goldens() {
    let cases: [(&str, &[&str]); 3] = [
        ("fig1_quick.txt", &["fig1", "--quick", "--no-cache"]),
        ("chaos_quick.txt", &["chaos", "--quick"]),
        ("durability_quick.txt", &["durability", "--quick"]),
    ];
    for (golden_name, args) in cases {
        let out = repro(args);
        assert!(out.status.success(), "{args:?} failed");
        let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(golden_name);
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
        let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
        // Sweep tables go to stdout; progress lines go to stderr. Only
        // trailing-newline count is normalized — every table byte counts.
        assert_eq!(
            stdout.trim_end_matches('\n'),
            golden.trim_end_matches('\n'),
            "{golden_name}: output diverged from the committed golden"
        );
    }
}

/// The cache's fail-soft contract, end to end through the binary: a
/// corrupted cell file under `<out>/cache` must not fail (or skew) the next
/// run — it is treated as a miss, recomputed, and atomically rewritten.
#[test]
fn repro_survives_a_corrupted_cache_entry() {
    let dir = tmp_dir("cache-corrupt");
    let args = [
        "logsize",
        "--quick",
        "--jobs",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ];
    let cold = repro(&args);
    assert!(cold.status.success(), "cold run failed");
    let cache = dir.join("cache");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache)
        .expect("cache directory populated")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "cold run must populate the cache");
    let victim = &entries[0];
    let original = std::fs::read(victim).unwrap();
    std::fs::write(victim, b"{ \"key\": \"garbage, not a cell\"").unwrap();

    let warm = repro(&args);
    assert!(warm.status.success(), "corrupt cache entry failed the run");
    assert_eq!(
        cold.stdout, warm.stdout,
        "recomputed cell must reproduce the cold output bit-for-bit"
    );
    let rewritten = std::fs::read(victim).unwrap();
    assert_eq!(
        rewritten, original,
        "corrupt entry must be recomputed and rewritten in place"
    );
    assert!(
        std::fs::read_dir(&cache).unwrap().all(|e| e
            .unwrap()
            .path()
            .extension()
            .is_some_and(|x| x == "json")),
        "atomic rewrite must not leave temp files behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tracing acceptance property, end to end through the binary: the
/// chaos sweep's table and every JSONL trace of `--jobs 4` are
/// byte-identical to `--jobs 1`.
#[test]
fn repro_chaos_traces_identical_across_jobs() {
    let run = |jobs: &str, tag: &str| {
        let traces = tmp_dir(tag);
        std::fs::create_dir_all(&traces).unwrap();
        let out = repro(&[
            "chaos",
            "--quick",
            "--jobs",
            jobs,
            "--trace-dir",
            traces.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "chaos run (--jobs {jobs}) failed");
        (out.stdout, traces)
    };
    let (seq_out, seq_dir) = run("1", "chaos-seq");
    let (par_out, par_dir) = run("4", "chaos-par");
    assert_eq!(
        seq_out, par_out,
        "chaos table must be byte-identical across job counts"
    );
    let mut names: Vec<_> = std::fs::read_dir(&seq_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "traces must be written");
    for name in names {
        let a = std::fs::read(seq_dir.join(&name)).unwrap();
        let b = std::fs::read(par_dir.join(&name)).unwrap();
        assert!(!a.is_empty(), "{name:?}: empty trace");
        assert_eq!(a, b, "{name:?}: traces diverge across job counts");
    }
    let _ = std::fs::remove_dir_all(&seq_dir);
    let _ = std::fs::remove_dir_all(&par_dir);
}

/// `--trace` + `--verify-trace` close the loop on a single run: the trace
/// is written as JSONL and its reconstructed causal chains pass the
/// checker.
#[test]
fn simulate_writes_and_verifies_a_trace() {
    let dir = tmp_dir("sim-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    let out = simulate(&[
        "--protocol",
        "opt-track",
        "--n",
        "6",
        "--events",
        "40",
        "--trace",
        path.to_str().unwrap(),
        "--verify-trace",
    ]);
    assert!(out.status.success(), "traced run failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pass the checker"), "stdout: {stdout}");
    let text = std::fs::read_to_string(&path).expect("trace written");
    assert!(!text.is_empty(), "trace must not be empty");
    assert!(
        text.lines().all(|l| l.starts_with("{\"t\":")),
        "every line must be a JSON object led by the timestamp"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let out = simulate(&["--seeds", "2", "--verify-trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("incompatible"));
}

#[test]
fn simulate_rejects_bad_parallel_flags() {
    let out = simulate(&["--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs must be at least 1"));

    let out = simulate(&["--seeds", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seeds must be at least 1"));

    let out = simulate(&["--seeds", "2", "--check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("incompatible"));
}

/// `--churn` validation: malformed specs and causally impossible plans
/// exit 2 before the run starts, naming the offending event.
#[test]
fn simulate_rejects_bad_churn_plans() {
    // Parse error: not an event spec at all.
    let out = simulate(&["--churn", "explode:3@5s"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kind"));

    // Parse error: missing time suffix.
    let out = simulate(&["--churn", "join:3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing @TIME"));

    // A join scheduled after the same site's leave: rejected as a re-join
    // (the site starts in the view, drains out, and may not come back).
    let out = simulate(&["--n", "6", "--churn", "leave:5@2s;join:5@5s"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("may join at most once"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Migration to a site that has already left the view.
    let out = simulate(&["--n", "6", "--churn", "leave:2@5s;migrate:1:0->2@8s"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a member"));

    // Out-of-range ids against the configured system size.
    let out = simulate(&["--n", "4", "--churn", "join:9@5s"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out-of-range"));
}

/// A valid churn spec runs end to end, reports membership metrics, and
/// passes the causal checker.
#[test]
fn simulate_runs_a_churned_workload_clean() {
    let out = simulate(&[
        "--protocol",
        "opt-track",
        "--n",
        "6",
        "--events",
        "40",
        "--churn",
        "join:5@5s;leave:1@30s",
        "--check",
    ]);
    assert!(out.status.success(), "churned run failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("membership"), "stdout: {stdout}");
    assert!(stdout.contains("1 joins, 1 leaves"), "stdout: {stdout}");
    assert!(stdout.contains("causally consistent"), "stdout: {stdout}");
}

#[test]
fn simulate_multi_seed_runs_in_seed_order() {
    let run = |jobs: &str| {
        let out = simulate(&[
            "--n", "4", "--events", "40", "--seeds", "3", "--jobs", jobs, "--seed", "7",
        ]);
        assert!(out.status.success(), "multi-seed run failed");
        String::from_utf8(out.stdout).expect("utf8")
    };
    let seq = run("1");
    let par = run("3");
    assert!(seq.contains("seeds           7..9"), "stdout: {seq}");
    // Everything below the wall-time line is deterministic and ordered.
    let tail = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("seed "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        tail(&seq),
        tail(&par),
        "per-seed output must not depend on --jobs"
    );
    assert!(seq.contains("seed 7"), "stdout: {seq}");
    assert!(seq.contains("seed 9"), "stdout: {seq}");
}
