//! The Opt-Track local log `{⟨j, clock_j, Dests⟩}` (KS-algorithm style).
//!
//! Each entry records a write operation in the causal past together with the
//! set of destination replicas for which "this write was sent there" is
//! still *relevant explicit information*. The paper (§III-B) prunes this
//! information with two implicit conditions:
//!
//! 1. once an update `m` is applied at site `s₂`, the fact that `s₂` is one
//!    of `m`'s destinations is redundant in the causal future of the apply
//!    ([`Log::remove_site`], [`Log::prune_applied`]);
//! 2. if `send(m) →co send(m')` and both updates are sent to `s₂`, then
//!    `s₂ ∈ m.Dests` is redundant in the causal future of `send(m')`
//!    ([`Log::record_write`] pruning, and the same-sender normalization in
//!    [`Log::normalize`] — same-sender sends are totally ordered by `→co`
//!    through program order).
//!
//! Entries whose destination list becomes empty are purged, **except** the
//! most recent entry per origin, which is kept as a marker: the paper notes
//! "it is important to keep entries with empty destination list as long as
//! they represent the most recent updates applied from some site".
//!
//! # Indexed layout
//!
//! The log is stored as **per-origin runs**: entries sorted by
//! `(origin, clock)` in one contiguous vector, so each origin's run is a
//! clock-sorted slice and run boundaries are origin changes. The grouping
//! mirrors the paper's structure directly — both implicit conditions are
//! *per-origin* facts:
//!
//! * condition 1 compares an entry's clock against the destination's
//!   last-applied clock **from that origin** ([`Log::prune_applied`] does
//!   destination-set work only on each run's applied prefix);
//! * the same-sender half of condition 2 orders entries **within one run**
//!   ([`Log::normalize`] accumulates newer destinations newest→oldest per
//!   run, never across runs);
//! * MERGE's cross-pruning rule ("a side that knows a strictly newer write
//!   from an origin has proven every destination of the older write
//!   redundant") compares clocks against the **newest-per-origin marker**,
//!   which is simply a run's last element.
//!
//! [`Log::merge`] therefore advances both logs in `(origin, clock)` order,
//! reading each side's marker at the run boundary and merging matching runs
//! clock-by-clock — `O(|a| + |b|)` with one allocation, where the reference
//! implementation ([`crate::reference::NaiveLog`]) pays a per-entry origin
//! scan and is `O(|a|·|b|)` in the worst case. Keeping the runs contiguous
//! (rather than one vector per origin) keeps `clone()` a single memcpy —
//! the piggyback fan-out clones the log once per destination, so clone cost
//! is as hot as merge cost.
//!
//! The log also keeps its total destination-set member count as an
//! aggregate counter updated **incrementally** on every insert and prune,
//! so [`MetaSized::meta_size`] is O(1) instead of a full walk per
//! piggyback/snapshot. `NaiveLog` recomputes it from scratch; the
//! differential proptests (`tests/log_differential.rs`) hold the two
//! implementations to identical observable state after every operation.

use crate::dests::DestSet;
use causal_types::{MetaSized, SiteId, SizeModel, WriteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One record of the Opt-Track log: write `⟨origin, clock⟩` was multicast to
/// `dests`, and that fact is still relevant for the sites remaining in
/// `dests`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LogEntry {
    /// The application process that performed the write.
    pub origin: SiteId,
    /// The writer's local write counter for this write (1-based).
    pub clock: u64,
    /// Destinations for which the information is still explicit.
    pub dests: DestSet,
}

impl LogEntry {
    /// Construct an entry.
    pub fn new(origin: SiteId, clock: u64, dests: DestSet) -> Self {
        LogEntry {
            origin,
            clock,
            dests,
        }
    }

    /// The write this entry describes.
    pub fn write_id(&self) -> WriteId {
        WriteId::new(self.origin, self.clock)
    }
}

/// Pruning switches. The defaults implement the full Opt-Track behaviour;
/// the ablation benches flip individual switches to quantify their effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PruneConfig {
    /// Apply implicit condition 2 (supersede destination info when a later
    /// causally-ordered send covers the same destinations). Disabling this
    /// reproduces a naive log that only shrinks via condition 1.
    pub condition2: bool,
    /// Keep the newest (possibly empty) entry per origin as a marker of the
    /// most recent known write from that origin.
    pub keep_markers: bool,
    /// Never treat the *local site itself* as covered by its own sends or
    /// own-write applies: condition 2 subtracts `dests ∖ {origin}`, and the
    /// `LastWriteOn` materialization keeps the holder's own destination
    /// mentions until a clock witness shows them applied.
    ///
    /// The published algorithm's self-pruning is justified only when a
    /// message parked toward the local site arrives before its causal
    /// future loops back via reads — true for short, homogeneous channel
    /// delays, but not under per-destination update batching, where an
    /// update can sit in a sender's lane for a full flush window while its
    /// dependency chain races ahead through other lanes. Off by default to
    /// keep unbatched runs byte-identical to the paper calibration; the
    /// simulator turns it on whenever batching is enabled.
    pub pin_self: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            condition2: true,
            keep_markers: true,
            pin_self: false,
        }
    }
}

/// The Opt-Track local log `LOG_i` (also the piggybacked `L_w` and the
/// per-variable `LastWriteOn⟨h⟩` structure).
///
/// Entries are stored in one flat vector sorted by `(origin, clock)` — i.e.
/// per-origin sorted-by-clock **runs laid out contiguously** (see the module
/// docs for why the per-origin grouping mirrors the paper's pruning rules).
/// The contiguous layout keeps `clone()` a single memcpy, which matters as
/// much as merge complexity: every multicast destination derives its
/// `LastWriteOn⟨h⟩` from a clone of the piggybacked snapshot. The log never
/// contains two entries for the same write.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Log {
    /// Entries sorted by `(origin, clock)`.
    entries: Vec<LogEntry>,
    /// Total destination-set members across entries (incremental).
    dest_ids: usize,
}

impl Log {
    /// The empty log.
    pub fn new() -> Self {
        Log::default()
    }

    /// Number of entries (including empty-destination markers).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the log holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in `(origin, clock)` order.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Entry for a specific write, if present.
    pub fn get(&self, origin: SiteId, clock: u64) -> Option<&LogEntry> {
        self.entries
            .binary_search_by(|e| (e.origin, e.clock).cmp(&(origin, clock)))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The newest clock this log knows for `origin` (marker entries count).
    /// One binary search to the end of the origin's run — no scan.
    pub fn latest_clock(&self, origin: SiteId) -> Option<u64> {
        let end = self.entries.partition_point(|e| e.origin <= origin);
        match end.checked_sub(1).map(|i| &self.entries[i]) {
            Some(e) if e.origin == origin => Some(e.clock),
            _ => None,
        }
    }

    /// Insert or combine an entry. If the same write is already present the
    /// destination sets are intersected (both sides' prunings are sound).
    /// Used by the protocols to attach a write's own entry to the log stored
    /// in `LastWriteOn⟨h⟩`.
    pub fn upsert(&mut self, entry: LogEntry) {
        match self
            .entries
            .binary_search_by(|e| (e.origin, e.clock).cmp(&(entry.origin, entry.clock)))
        {
            Ok(i) => {
                // Same write already present: combine knowledge (both
                // sides' prunings are sound, so intersect).
                let before = self.entries[i].dests.len();
                let d = self.entries[i].dests.intersect(&entry.dests);
                self.entries[i].dests = d;
                self.dest_ids -= before - d.len();
            }
            Err(i) => {
                self.entries.insert(i, entry);
                self.dest_ids += entry.dests.len();
            }
        }
    }

    /// Record a local write: implicit condition 2 prunes every existing
    /// entry's destinations by the new write's destination set (the new send
    /// is in the causal future of everything in the log), empties are purged
    /// and the write's own entry `⟨origin, clock, dests⟩` is appended.
    ///
    /// Call *after* snapshotting the log for piggybacking: the paper's SM
    /// carries "the currently stored records", i.e. the pre-write log.
    pub fn record_write(&mut self, origin: SiteId, clock: u64, dests: DestSet, cfg: PruneConfig) {
        if cfg.condition2 {
            // The new send informs every destination it actually reaches.
            // The origin itself receives no message (own writes apply
            // immediately, predicate unchecked), so under `pin_self` its
            // own pending-destination mentions survive the subtraction.
            let mut covered = dests;
            if cfg.pin_self {
                covered.remove(origin);
            }
            let mut removed = 0;
            for e in &mut self.entries {
                let before = e.dests.len();
                e.dests.subtract(&covered);
                removed += before - e.dests.len();
            }
            self.dest_ids -= removed;
        }
        self.upsert(LogEntry::new(origin, clock, dests));
        self.normalize(cfg);
    }

    /// Implicit condition 1 for a single site: remove `site` from every
    /// entry's destination set (used when `site` applies an update — its own
    /// membership in any piggybacked destination list is now redundant,
    /// because the activation predicate guaranteed those writes were applied
    /// at `site` first).
    pub fn remove_site(&mut self, site: SiteId) {
        let mut removed = 0;
        for e in &mut self.entries {
            if e.dests.remove(site) {
                removed += 1;
            }
        }
        self.dest_ids -= removed;
    }

    /// Implicit condition 1 driven by apply knowledge: remove `site` from
    /// every entry whose write is already applied at `site`, as witnessed by
    /// `last_applied_clock[origin]` (the largest write-clock from `origin`
    /// applied at `site`). Sound because multicasts from one origin reach a
    /// given destination in clock order over FIFO channels.
    ///
    /// Entries within a run are clock-sorted, so only each run's applied
    /// prefix does destination-set work; the rest of the run is skipped with
    /// a plain origin comparison.
    pub fn prune_applied(&mut self, site: SiteId, last_applied_clock: &[u64]) {
        let mut removed = 0;
        let mut i = 0;
        while i < self.entries.len() {
            let origin = self.entries[i].origin;
            let cap = last_applied_clock[origin.index()];
            // Applied prefix of this origin's run.
            while i < self.entries.len()
                && self.entries[i].origin == origin
                && self.entries[i].clock <= cap
            {
                if self.entries[i].dests.remove(site) {
                    removed += 1;
                }
                i += 1;
            }
            // Skip the unapplied remainder of the run.
            while i < self.entries.len() && self.entries[i].origin == origin {
                i += 1;
            }
        }
        self.dest_ids -= removed;
    }

    /// A site left the system for good: drop every entry it originated
    /// (no survivor's activation predicate waits on a departed sender —
    /// the membership layer fast-forwards per-origin bookkeeping past its
    /// lost traffic) and remove it from every remaining destination set
    /// (it will never apply anything again, so its membership in a
    /// destination list can never constrain a future delivery). A later
    /// `merge` with a peer that has not yet forgotten the site may
    /// reintroduce entries; that is sound — merely wasteful until the
    /// peer forgets too — because forgotten entries carry no obligations.
    pub fn forget_site(&mut self, departed: SiteId, cfg: PruneConfig) {
        let mut removed = 0;
        self.entries.retain(|e| {
            if e.origin == departed {
                removed += e.dests.len();
                false
            } else {
                true
            }
        });
        self.dest_ids -= removed;
        self.remove_site(departed);
        self.normalize(cfg);
    }

    /// MERGE: fold the piggybacked log `incoming` (the `LastWriteOn⟨h⟩` of a
    /// read value) into this local log, then normalize.
    ///
    /// Rules (KS-style; each side's prunings are sound, so combined
    /// knowledge is the strongest of both):
    ///
    /// * same write in both logs → intersect destination sets;
    /// * a side that knows a **strictly newer** write from an origin but no
    ///   longer carries an older entry has, somewhere in its causal past,
    ///   proven every destination of that older write redundant (entries
    ///   are only ever dropped once their destination set empties, and
    ///   emptying is justified by implicit condition 1 or 2, which are
    ///   facts about the causal structure — once true, true forever).
    ///   Hence: an incoming entry older than the local marker for its
    ///   origin is skipped, and a local entry older than the incoming
    ///   side's marker is emptied. This cross-pruning is what keeps the
    ///   amortized log near `O(n)`; without the newest-per-origin markers
    ///   (which witness the "knows strictly newer" fact) it would be
    ///   unsound — which is why the paper insists on keeping them.
    ///
    /// One pass over both logs in `(origin, clock)` order: each origin run's
    /// newest marker is read at the run boundary, and matching runs merge
    /// clock-by-clock — `O(|self| + |incoming|)` with a single allocation.
    pub fn merge(&mut self, incoming: &Log, cfg: PruneConfig) {
        if !cfg.condition2 {
            for e in incoming.iter() {
                self.upsert(*e);
            }
            self.normalize(cfg);
            return;
        }
        let a = &self.entries;
        let b = &incoming.entries;
        let mut out: Vec<LogEntry> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            // Next origin run in merged order, with both sides' pre-merge
            // newest markers for it (None when a side lacks the origin).
            let origin = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.origin.min(y.origin),
                (Some(x), None) => x.origin,
                (None, Some(y)) => y.origin,
                (None, None) => unreachable!("loop condition"),
            };
            let ai_end = i + a[i..].partition_point(|e| e.origin == origin);
            let bj_end = j + b[j..].partition_point(|e| e.origin == origin);
            let a_latest = (ai_end > i).then(|| a[ai_end - 1].clock);
            let b_latest = (bj_end > j).then(|| b[bj_end - 1].clock);
            // Two-pointer clock merge of the two runs.
            while i < ai_end || j < bj_end {
                let take_a = match (a.get(i), (j < bj_end).then(|| &b[j])) {
                    (Some(x), Some(y)) if i < ai_end => {
                        if x.clock == y.clock {
                            let mut e = *x;
                            e.dests = e.dests.intersect(&y.dests);
                            out.push(e);
                            i += 1;
                            j += 1;
                            continue;
                        }
                        x.clock < y.clock
                    }
                    _ => i < ai_end,
                };
                if take_a {
                    let mut e = a[i];
                    if b_latest > Some(e.clock) {
                        // Local-only entry older than the incoming marker:
                        // the incoming side proved it redundant.
                        e.dests = DestSet::EMPTY;
                    }
                    out.push(e);
                    i += 1;
                } else {
                    let e = b[j];
                    j += 1;
                    if a_latest > Some(e.clock) {
                        // Incoming-only entry older than the local marker:
                        // already known-redundant here.
                        continue;
                    }
                    out.push(e);
                }
            }
        }
        self.entries = out;
        self.dest_ids = self.entries.iter().map(|e| e.dests.len()).sum();
        self.normalize(cfg);
    }

    /// Normalization pass: same-sender condition 2 (an older entry's
    /// destinations are pruned by every newer same-sender entry's current
    /// destinations) followed by a purge of empty entries (keeping the
    /// newest entry per origin as a marker when configured).
    pub fn normalize(&mut self, cfg: PruneConfig) {
        if cfg.condition2 {
            // Within each origin run, walk newest to oldest accumulating
            // the union of newer destinations.
            let mut removed = 0;
            let mut group_end = self.entries.len();
            while group_end > 0 {
                let origin = self.entries[group_end - 1].origin;
                let mut group_start = group_end;
                while group_start > 0 && self.entries[group_start - 1].origin == origin {
                    group_start -= 1;
                }
                let mut newer = DestSet::EMPTY;
                for e in self.entries[group_start..group_end].iter_mut().rev() {
                    let before = e.dests.len();
                    e.dests.subtract(&newer);
                    removed += before - e.dests.len();
                    newer = newer.union(&e.dests);
                }
                group_end = group_start;
            }
            self.dest_ids -= removed;
        }
        self.purge(cfg);
    }

    /// Drop entries with empty destination sets. With `cfg.keep_markers`,
    /// the newest entry of each origin (its run's tail) survives even when
    /// empty. Purged entries have empty destination sets, so the
    /// destination-member counter is unchanged.
    pub fn purge(&mut self, cfg: PruneConfig) {
        let len = self.entries.len();
        let mut w = 0;
        for r in 0..len {
            let e = self.entries[r];
            let is_run_tail = r + 1 >= len || self.entries[r + 1].origin != e.origin;
            if !e.dests.is_empty() || (cfg.keep_markers && is_run_tail) {
                self.entries[w] = e;
                w += 1;
            }
        }
        self.entries.truncate(w);
    }

    /// Causal-stability GC: empty the destination set of every entry whose
    /// write is at or below the stable `frontier` (per-origin: every live
    /// site has applied all of that origin's writes destined to it up to
    /// `frontier[origin]`), then purge. A stable write's destination
    /// constraints are vacuous — the activation predicate at every
    /// destination is already satisfied — so dropping them cannot block or
    /// reorder any future delivery. Each origin's newest entry survives as
    /// a marker (under `cfg.keep_markers`), preserving the MERGE
    /// cross-pruning power of [`Log::latest_clock`]; a peer that has not yet
    /// pruned may reintroduce a stable entry via merge, which is sound
    /// (forgotten entries carry no obligations) and bounded by that peer's
    /// own GC. Returns the number of entries removed.
    pub fn prune_stable(&mut self, frontier: &[u64], cfg: PruneConfig) -> usize {
        let mut removed_ids = 0;
        for e in &mut self.entries {
            let stable = frontier
                .get(e.origin.index())
                .is_some_and(|&f| e.clock <= f);
            if stable && !e.dests.is_empty() {
                removed_ids += e.dests.len();
                e.dests = DestSet::EMPTY;
            }
        }
        self.dest_ids -= removed_ids;
        let before = self.entries.len();
        self.purge(cfg);
        before - self.entries.len()
    }

    /// Total number of site ids across all destination lists (for size
    /// accounting and diagnostics). O(1) — maintained incrementally.
    pub fn dest_id_count(&self) -> usize {
        self.dest_ids
    }
}

impl fmt::Debug for Log {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Log[")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "⟨{},{},{:?}⟩", e.origin, e.clock, e.dests)?;
        }
        write!(f, "]")
    }
}

impl MetaSized for Log {
    /// Each entry is transmitted as two scalars (`origin`, `clock`) plus its
    /// destination set. The paper's Java implementation keeps the log as
    /// three primitive lists `⟨j⟩, ⟨clock_j⟩, ⟨Dests⟩` — under the
    /// `java_like` model each entry therefore costs three packed words;
    /// under the `wire` model the destination set is an explicit id list.
    ///
    /// O(1): the total destination-member count is maintained incrementally
    /// on insert/prune (module docs).
    fn meta_size(&self, model: &SizeModel) -> u64 {
        model.scalars(2 * self.entries.len()) + model.dest_sets(self.entries.len(), self.dest_ids)
    }
}

/// Difference between two Opt-Track logs from the same site.
///
/// Consecutive piggyback snapshots from one sender share most entries, so
/// a batched SM frame can ship the entries that changed (`upserts`: new
/// keys, or keys whose destination set shrank) plus the keys that were
/// purged (`removals`) instead of the whole log. The delta must be applied
/// with exact-replacement semantics — [`Log::upsert`] *intersects*
/// destination sets on an existing key, which is the piggyback-merge rule,
/// not reconstruction — hence [`LogDelta::apply_to`] rebuilds the entry
/// vector directly.
///
/// Exactness invariant, relied on by the wire codec's round-trip tests:
/// `LogDelta::between(prev, next).apply_to(prev) == next`.
#[derive(Clone, PartialEq, Debug)]
pub struct LogDelta {
    /// Entries to insert or overwrite, sorted by `(origin, clock)`.
    pub upserts: Vec<LogEntry>,
    /// Write keys to drop, sorted by `(origin, clock)`.
    pub removals: Vec<WriteId>,
}

impl LogDelta {
    /// Compute the delta that turns `prev` into `next`.
    pub fn between(prev: &Log, next: &Log) -> LogDelta {
        let mut upserts = Vec::new();
        let mut removals = Vec::new();
        let (a, b) = (&prev.entries, &next.entries);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) if (x.origin, x.clock) == (y.origin, y.clock) => {
                    if x.dests != y.dests {
                        upserts.push(*y);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(x), Some(y)) if (x.origin, x.clock) < (y.origin, y.clock) => {
                    removals.push(x.write_id());
                    i += 1;
                }
                (Some(_), Some(y)) => {
                    upserts.push(*y);
                    j += 1;
                }
                (Some(x), None) => {
                    removals.push(x.write_id());
                    i += 1;
                }
                (None, Some(y)) => {
                    upserts.push(*y);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        LogDelta { upserts, removals }
    }

    /// Reconstruct the successor snapshot from its predecessor.
    pub fn apply_to(&self, prev: &Log) -> Log {
        let mut entries = Vec::with_capacity(prev.entries.len() + self.upserts.len());
        let mut ups = self.upserts.iter().peekable();
        let mut rms = self.removals.iter().peekable();
        for e in &prev.entries {
            let key = (e.origin, e.clock);
            while let Some(&&up) = ups.peek() {
                if (up.origin, up.clock) < key {
                    entries.push(up);
                    ups.next();
                } else {
                    break;
                }
            }
            if ups.peek().is_some_and(|up| (up.origin, up.clock) == key) {
                entries.push(*ups.next().unwrap());
                continue;
            }
            if rms.peek().is_some_and(|rm| (rm.site, rm.clock) == key) {
                rms.next();
                continue;
            }
            entries.push(*e);
        }
        entries.extend(ups.copied());
        let dest_ids = entries.iter().map(|e| e.dests.len()).sum();
        Log { entries, dest_ids }
    }
}

impl MetaSized for LogDelta {
    /// Each upsert is a full entry (two scalars plus its destination set);
    /// each removal is a two-scalar key.
    fn meta_size(&self, model: &SizeModel) -> u64 {
        let members: usize = self.upserts.iter().map(|e| e.dests.len()).sum();
        model.scalars(2 * (self.upserts.len() + self.removals.len()))
            + model.dest_sets(self.upserts.len(), members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(i: usize) -> SiteId {
        SiteId::from(i)
    }
    fn d(xs: &[usize]) -> DestSet {
        DestSet::from_sites(xs.iter().map(|&i| s(i)))
    }
    fn cfg() -> PruneConfig {
        PruneConfig::default()
    }

    /// The incremental counters must always equal a full recount.
    fn assert_counters(log: &Log) {
        assert_eq!(log.len(), log.iter().count(), "len counter drifted");
        assert_eq!(
            log.dest_id_count(),
            log.iter().map(|e| e.dests.len()).sum::<usize>(),
            "dest_ids counter drifted"
        );
    }

    #[test]
    fn log_delta_roundtrips_across_writes_and_merges() {
        let mut a = Log::new();
        a.record_write(s(0), 1, d(&[1, 2]), cfg());
        a.record_write(s(1), 1, d(&[2, 3]), cfg());
        let mut b = a.clone();
        b.record_write(s(0), 2, d(&[1, 3]), cfg());
        let mut incoming = Log::new();
        incoming.upsert(LogEntry::new(s(2), 5, d(&[0, 1])));
        b.merge(&incoming, cfg());
        let delta = LogDelta::between(&a, &b);
        let rebuilt = delta.apply_to(&a);
        assert_eq!(rebuilt, b);
        assert_counters(&rebuilt);
    }

    proptest! {
        #[test]
        fn prop_log_delta_between_apply_is_identity(
            base in proptest::collection::vec(
                (0usize..6, 1u64..20, proptest::collection::vec(0usize..6, 0..4)), 0..16),
            extra in proptest::collection::vec(
                (0usize..6, 1u64..20, proptest::collection::vec(0usize..6, 0..4)), 0..16),
            stable in proptest::collection::vec(0u64..10, 6),
        ) {
            let mut a = Log::new();
            for (o, c, ds) in base {
                a.upsert(LogEntry::new(s(o), c, d(&ds)));
            }
            a.normalize(cfg());
            let mut b = a.clone();
            for (o, c, ds) in extra {
                b.record_write(s(o), 100 + c, d(&ds), cfg());
            }
            b.prune_stable(&stable, cfg());
            let rebuilt = LogDelta::between(&a, &b).apply_to(&a);
            prop_assert_eq!(&rebuilt, &b);
            assert_counters(&rebuilt);
        }
    }

    /// The flat layout's clone-is-a-memcpy property rests on `LogEntry`
    /// being `Copy` and word-sized; a non-`Copy` field (or a fat one) would
    /// silently turn every piggyback snapshot into a per-entry deep clone.
    #[test]
    fn log_entry_stays_copy_and_small() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<LogEntry>();
        let sz = std::mem::size_of::<LogEntry>();
        assert!(
            sz <= 32,
            "LogEntry grew to {sz} bytes; clone cost scales with it"
        );
    }

    #[test]
    fn record_write_appends_own_entry() {
        let mut log = Log::new();
        log.record_write(s(0), 1, d(&[1, 2]), cfg());
        assert_eq!(log.len(), 1);
        let e = log.get(s(0), 1).unwrap();
        assert_eq!(e.dests, d(&[1, 2]));
        assert_counters(&log);
    }

    #[test]
    fn condition2_prunes_prior_entries_on_write() {
        let mut log = Log::new();
        log.record_write(s(1), 1, d(&[2, 3]), cfg());
        // Site 0 now writes to {2, 4}: destination 2 of the older entry is
        // superseded (a causally-later send covers it); 3 is not.
        log.record_write(s(0), 1, d(&[2, 4]), cfg());
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[3]));
        assert_eq!(log.get(s(0), 1).unwrap().dests, d(&[2, 4]));
        assert_counters(&log);
    }

    #[test]
    fn condition2_disabled_keeps_everything() {
        let no_c2 = PruneConfig {
            condition2: false,
            ..PruneConfig::default()
        };
        let mut log = Log::new();
        log.record_write(s(1), 1, d(&[2, 3]), no_c2);
        log.record_write(s(0), 1, d(&[2, 3]), no_c2);
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[2, 3]));
    }

    #[test]
    fn same_sender_condition2_in_normalize() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.upsert(LogEntry::new(s(1), 2, d(&[2, 4])));
        log.normalize(cfg());
        // Older same-sender entry loses dests covered by the newer one.
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[3]));
        assert_eq!(log.get(s(1), 2).unwrap().dests, d(&[2, 4]));
        assert_counters(&log);
    }

    #[test]
    fn forget_site_drops_origin_and_dest_membership() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.upsert(LogEntry::new(s(1), 2, d(&[0, 2])));
        log.upsert(LogEntry::new(s(2), 1, d(&[1, 3])));
        log.upsert(LogEntry::new(s(3), 1, d(&[0])));
        let mut naive = crate::reference::NaiveLog::new();
        for e in log.iter() {
            naive.upsert(*e);
        }
        log.forget_site(s(1), cfg());
        naive.forget_site(s(1), cfg());
        // Site 1's own entries are gone; its membership in other entries'
        // destination sets is gone; unrelated entries survive.
        assert!(log.get(s(1), 1).is_none());
        assert!(log.get(s(1), 2).is_none());
        assert_eq!(log.get(s(2), 1).unwrap().dests, d(&[3]));
        assert_eq!(log.get(s(3), 1).unwrap().dests, d(&[0]));
        assert_counters(&log);
        // Reference implementation agrees entry-for-entry.
        assert_eq!(
            log.iter().copied().collect::<Vec<_>>(),
            naive.iter().copied().collect::<Vec<_>>()
        );
    }

    /// `pin_self`: a write whose destination set includes the writer itself
    /// (the writer is a replica) must not prune the *writer's own* pending
    /// mentions — no message carries the obligation to self, since own
    /// writes apply immediately without the activation predicate. Other
    /// destinations are still covered by the actual sends.
    #[test]
    fn pin_self_keeps_writer_mentions_through_condition2() {
        let pinned = PruneConfig {
            pin_self: true,
            ..PruneConfig::default()
        };
        // Site 0 knows write (s1, 1) is still owed to itself and to s2.
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[0, 2])));
        // Site 0 writes to {0, 2}: s2 learns of the pending entry from the
        // piggyback of this very send, but site 0 sends itself nothing.
        log.record_write(s(0), 5, d(&[0, 2]), pinned);
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[0]));
        // The write's own entry keeps its full destination set.
        assert_eq!(log.get(s(0), 5).unwrap().dests, d(&[0, 2]));
        assert_counters(&log);
        // The default behaviour drops the self mention (the paper's rule,
        // sound only when in-flight delays are short).
        let mut legacy = Log::new();
        legacy.upsert(LogEntry::new(s(1), 1, d(&[0, 2])));
        legacy.record_write(s(0), 5, d(&[0, 2]), cfg());
        assert!(legacy.get(s(1), 1).unwrap().dests.is_empty());
    }

    #[test]
    fn purge_keeps_newest_marker_per_origin() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, DestSet::EMPTY));
        log.upsert(LogEntry::new(s(1), 2, DestSet::EMPTY));
        log.upsert(LogEntry::new(s(2), 1, d(&[0])));
        log.purge(cfg());
        assert!(log.get(s(1), 1).is_none(), "old empty entry purged");
        assert!(log.get(s(1), 2).is_some(), "newest kept as marker");
        assert!(log.get(s(2), 1).is_some());
        assert_counters(&log);
    }

    #[test]
    fn purge_without_markers_drops_all_empties() {
        let no_markers = PruneConfig {
            keep_markers: false,
            ..PruneConfig::default()
        };
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 2, DestSet::EMPTY));
        log.purge(no_markers);
        assert!(log.is_empty());
        assert_counters(&log);
    }

    #[test]
    fn merge_intersects_common_entries() {
        let mut a = Log::new();
        a.upsert(LogEntry::new(s(1), 1, d(&[2, 3, 4])));
        let mut b = Log::new();
        b.upsert(LogEntry::new(s(1), 1, d(&[3, 4, 5])));
        a.merge(&b, cfg());
        assert_eq!(a.get(s(1), 1).unwrap().dests, d(&[3, 4]));
        assert_counters(&a);
    }

    #[test]
    fn merge_inserts_unknown_entries() {
        let mut a = Log::new();
        let mut b = Log::new();
        b.upsert(LogEntry::new(s(2), 7, d(&[0, 1])));
        a.merge(&b, cfg());
        assert_eq!(a.get(s(2), 7).unwrap().dests, d(&[0, 1]));
        assert_counters(&a);
    }

    #[test]
    fn merge_cross_prunes_against_markers() {
        // Local knows ⟨1,1⟩ only; incoming's marker for origin 1 is clock 3:
        // the local entry empties (and survives only as a marker candidate).
        let mut a = Log::new();
        a.upsert(LogEntry::new(s(1), 1, d(&[2, 3])));
        let mut b = Log::new();
        b.upsert(LogEntry::new(s(1), 3, d(&[4])));
        // Incoming also carries a stale ⟨1,2⟩... which the local side has
        // never seen but whose clock is older than nothing local — adopted.
        a.merge(&b, cfg());
        assert!(a.get(s(1), 1).is_none(), "superseded local entry purged");
        assert_eq!(a.get(s(1), 3).unwrap().dests, d(&[4]));

        // Symmetrically: incoming entries older than the local marker skip.
        let mut c = Log::new();
        c.upsert(LogEntry::new(s(1), 5, d(&[0])));
        let mut old = Log::new();
        old.upsert(LogEntry::new(s(1), 2, d(&[6, 7])));
        c.merge(&old, cfg());
        assert!(c.get(s(1), 2).is_none(), "stale incoming entry skipped");
        assert_eq!(c.get(s(1), 5).unwrap().dests, d(&[0]));
        assert_counters(&c);
    }

    #[test]
    fn remove_site_clears_membership_everywhere() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[0, 2])));
        log.upsert(LogEntry::new(s(3), 4, d(&[0])));
        log.remove_site(s(0));
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[2]));
        assert!(log.get(s(3), 4).unwrap().dests.is_empty());
        assert_counters(&log);
    }

    #[test]
    fn prune_applied_uses_clock_witness() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 3, d(&[0, 2])));
        log.upsert(LogEntry::new(s(1), 9, d(&[0, 2])));
        // Site 0 has applied writes from s1 up to clock 5: entry clock 3 is
        // known applied at 0, entry clock 9 is not.
        let mut last = vec![0u64; 4];
        last[1] = 5;
        log.prune_applied(s(0), &last);
        assert_eq!(log.get(s(1), 3).unwrap().dests, d(&[2]));
        assert_eq!(log.get(s(1), 9).unwrap().dests, d(&[0, 2]));
        assert_counters(&log);
    }

    #[test]
    fn prune_stable_empties_stable_entries_and_keeps_markers() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 2, d(&[0, 2])));
        log.upsert(LogEntry::new(s(1), 5, d(&[0])));
        log.upsert(LogEntry::new(s(2), 1, d(&[3])));
        // Frontier: origin 1 stable through clock 3, origin 2 through 1.
        let mut frontier = vec![0u64; 4];
        frontier[1] = 3;
        frontier[2] = 1;
        let removed = log.prune_stable(&frontier, cfg());
        // ⟨1,2⟩ was stable and not its run's tail: gone. ⟨1,5⟩ is above the
        // frontier: untouched. ⟨2,1⟩ was stable but is its origin's newest:
        // kept as an empty marker so latest_clock survives for MERGE.
        assert_eq!(removed, 1);
        assert!(log.get(s(1), 2).is_none());
        assert_eq!(log.get(s(1), 5).unwrap().dests, d(&[0]));
        assert!(log.get(s(2), 1).unwrap().dests.is_empty());
        assert_eq!(log.latest_clock(s(2)), Some(1));
        assert_counters(&log);
    }

    #[test]
    fn prune_stable_at_zero_frontier_is_a_noop() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[0, 2])));
        let before = log.clone();
        assert_eq!(log.prune_stable(&[0, 0, 0], cfg()), 0);
        assert_eq!(log, before);
    }

    #[test]
    fn latest_clock_per_origin() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 3, d(&[0])));
        log.upsert(LogEntry::new(s(1), 7, d(&[0])));
        log.upsert(LogEntry::new(s(2), 1, d(&[0])));
        assert_eq!(log.latest_clock(s(1)), Some(7));
        assert_eq!(log.latest_clock(s(2)), Some(1));
        assert_eq!(log.latest_clock(s(0)), None);
    }

    #[test]
    fn iteration_order_is_origin_then_clock() {
        let mut log = Log::new();
        // Insert out of order on purpose.
        log.upsert(LogEntry::new(s(2), 1, d(&[0])));
        log.upsert(LogEntry::new(s(0), 9, d(&[1])));
        log.upsert(LogEntry::new(s(0), 2, d(&[1])));
        log.upsert(LogEntry::new(s(1), 4, d(&[2])));
        let keys: Vec<_> = log.iter().map(|e| (e.origin, e.clock)).collect();
        assert_eq!(
            keys,
            vec![(s(0), 2), (s(0), 9), (s(1), 4), (s(2), 1)],
            "flattened runs must read in (origin, clock) order"
        );
    }

    #[test]
    fn meta_size_counts_scalars_and_dest_sets() {
        let m = SizeModel::java_like();
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.upsert(LogEntry::new(s(2), 1, d(&[4])));
        // Packed encoding: 2 entries × 3 words × 10 B = 60.
        assert_eq!(log.meta_size(&m), 60);
        // Wire encoding: 2 entries × 2 scalars × 4 B + 3 ids × 2 B = 22.
        assert_eq!(log.meta_size(&SizeModel::wire()), 22);
    }

    #[test]
    fn duplicate_insert_is_intersection_not_duplicate() {
        let mut log = Log::new();
        log.upsert(LogEntry::new(s(1), 1, d(&[2, 3])));
        log.upsert(LogEntry::new(s(1), 1, d(&[3, 4])));
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(s(1), 1).unwrap().dests, d(&[3]));
        assert_counters(&log);
    }

    /// Strategy: a small random log.
    fn arb_log() -> impl Strategy<Value = Log> {
        proptest::collection::vec(
            (
                0usize..6,
                1u64..8,
                proptest::collection::vec(0usize..6, 0..6),
            ),
            0..12,
        )
        .prop_map(|items| {
            let mut log = Log::new();
            for (o, c, ds) in items {
                log.upsert(LogEntry::new(s(o), c, d(&ds)));
            }
            log
        })
    }

    proptest! {
        #[test]
        fn prop_normalize_is_idempotent(mut log in arb_log()) {
            log.normalize(cfg());
            let once = log.clone();
            log.normalize(cfg());
            prop_assert_eq!(log, once);
        }

        #[test]
        fn prop_normalize_never_grows_dests(log in arb_log()) {
            let mut n = log.clone();
            n.normalize(cfg());
            for e in n.iter() {
                let before = log.get(e.origin, e.clock).unwrap();
                prop_assert!(e.dests.is_subset(&before.dests));
            }
        }

        #[test]
        fn prop_merge_upper_bounds_knowledge(a in arb_log(), b in arb_log()) {
            // After merge, every write known to either side is known to the
            // result or was purged as empty/non-newest.
            let mut m = a.clone();
            m.merge(&b, cfg());
            for e in m.iter() {
                // Dests in the merge never exceed what either side knew.
                let da = a.get(e.origin, e.clock).map(|x| x.dests);
                let db = b.get(e.origin, e.clock).map(|x| x.dests);
                let bound = match (da, db) {
                    (Some(x), Some(y)) => x.intersect(&y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => DestSet::EMPTY,
                };
                prop_assert!(e.dests.is_subset(&bound));
            }
        }

        #[test]
        fn prop_entries_sorted_and_unique(a in arb_log(), b in arb_log()) {
            let mut m = a.clone();
            m.merge(&b, cfg());
            let keys: Vec<_> = m.iter().map(|e| (e.origin, e.clock)).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(keys, sorted);
        }

        #[test]
        fn prop_merge_commutative_on_normalized_logs(a in arb_log(), b in arb_log()) {
            // Two sound, normalized logs combine to the same knowledge
            // regardless of merge direction (intersection and the
            // newest-marker cross-pruning are both symmetric).
            let mut a = a;
            let mut b = b;
            a.normalize(cfg());
            b.normalize(cfg());
            let mut ab = a.clone();
            ab.merge(&b, cfg());
            let mut ba = b.clone();
            ba.merge(&a, cfg());
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_merge_idempotent(a in arb_log()) {
            let mut a = a;
            a.normalize(cfg());
            let mut aa = a.clone();
            aa.merge(&a, cfg());
            prop_assert_eq!(aa, a);
        }

        #[test]
        fn prop_markers_pin_latest_clock(mut log in arb_log()) {
            let latest_before: Vec<_> =
                (0..6).map(|o| log.latest_clock(s(o))).collect();
            log.normalize(cfg());
            for (o, expected) in latest_before.iter().enumerate() {
                // Normalization never loses track of the newest write per
                // origin (the marker rule).
                prop_assert_eq!(log.latest_clock(s(o)), *expected);
            }
        }

        #[test]
        fn prop_counters_track_contents(a in arb_log(), b in arb_log()) {
            // The incremental len/dest_ids counters survive every public
            // mutation path.
            let mut m = a.clone();
            assert_counters(&m);
            m.merge(&b, cfg());
            assert_counters(&m);
            m.record_write(s(0), 99, d(&[1, 2, 3]), cfg());
            assert_counters(&m);
            m.remove_site(s(2));
            assert_counters(&m);
            let last = vec![4u64; 6];
            m.prune_applied(s(1), &last);
            assert_counters(&m);
            m.purge(cfg());
            assert_counters(&m);
        }
    }
}
