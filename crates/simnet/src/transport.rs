//! The reliable-delivery transport: exactly-once FIFO over a lossy network.
//!
//! The paper's testbed gets reliability, no-duplication and FIFO order for
//! free from TCP. When a [`crate::channel::FaultPlan`] makes the simulated
//! network lossy, this layer restores those guarantees the way TCP does:
//!
//! * every protocol message is wrapped in a sequenced [`Frame::Data`]
//!   envelope, numbered per ordered site pair;
//! * receivers answer with cumulative [`Frame::Ack`]s, deduplicate
//!   already-seen sequence numbers and buffer out-of-order arrivals until
//!   the gap fills, handing messages to the protocol strictly in send
//!   order;
//! * senders keep a bounded in-flight window, park excess sends in a
//!   backlog, and guard every unacked frame with a retransmission timer
//!   under exponential backoff.
//!
//! Timer jitter is derived deterministically from the channel coordinates
//! (site pair, sequence number, attempt), staggering retransmission storms
//! without consuming any RNG stream — runs stay bit-reproducible.
//!
//! The struct is a pure state machine: methods return [`TransportCmd`]s and
//! the simulator interprets them (sampling latency and fault decisions,
//! scheduling events, recording metrics). Crash handling — which channels
//! are wiped at a fail-stop, how streams are renumbered when a peer
//! announces a new incarnation — lives here too; the sync *handshake*
//! content is protocol business (see `causal_proto::reliable`).

use causal_metrics::RunMetrics;
use causal_proto::{Frame, Msg, PeerAckInfo};
use causal_types::{SimDuration, SiteId};
use std::collections::{BTreeMap, VecDeque};

/// Transport knobs. The defaults suit the default WAN latency model
/// (20–80 ms one-way): the first retransmission waits just over one RTT,
/// backoff doubles up to `2^rto_max_shift` times.
#[derive(Clone, Copy, Debug)]
pub struct TransportTuning {
    /// Maximum unacked data frames per ordered site pair; further sends
    /// wait in a backlog.
    pub window: usize,
    /// Base retransmission timeout, microseconds.
    pub rto_base_micros: u64,
    /// Backoff cap: the timeout never exceeds `base << rto_max_shift`.
    pub rto_max_shift: u32,
}

impl Default for TransportTuning {
    fn default() -> Self {
        TransportTuning {
            window: 32,
            rto_base_micros: 250_000,
            rto_max_shift: 5,
        }
    }
}

/// Absolute ceiling on the retransmission timeout, microseconds. Equals the
/// default tuning's `base << rto_max_shift` (250 ms × 2⁵ = 8 s), so default
/// runs are unaffected; its job is to keep pathological tunings (a huge
/// base, `rto_max_shift` ≥ 64) from overflowing the shift into a
/// near-zero timeout — which would turn backoff into a retransmission storm
/// that starves every other channel.
pub const MAX_RTO_MICROS: u64 = 8_000_000;

/// The deterministic jitter spans `base / RTO_JITTER_DIVISOR` microseconds
/// (a quarter of the base timeout), enough to stagger synchronized
/// retransmission storms without materially stretching the backoff.
pub const RTO_JITTER_DIVISOR: u64 = 4;

/// What the simulator must do on the transport's behalf.
#[derive(Debug)]
pub enum TransportCmd {
    /// Put `frame` on the wire toward `to` (subject to fault injection for
    /// data and ack frames).
    Emit {
        /// Destination site.
        to: SiteId,
        /// The frame.
        frame: Frame,
        /// Post-warm-up attribution of the wrapped message, if any.
        measured: bool,
        /// `true` when this emission is a retransmission.
        retransmit: bool,
    },
    /// Arm a retransmission timer: after `after`, fire a
    /// [`crate::kernel::SimEvent::RetransmitCheck`] with these coordinates.
    Arm {
        /// Destination site of the guarded channel.
        to: SiteId,
        /// Stream generation the timer is valid for.
        stream_gen: u32,
        /// Guarded sequence number.
        seq: u64,
        /// Attempt count the check will carry.
        attempt: u32,
        /// Delay until the check fires.
        after: SimDuration,
    },
    /// Hand an in-order, exactly-once message to the receiving protocol
    /// site.
    Handoff {
        /// The unwrapped protocol message.
        msg: Msg,
        /// Post-warm-up attribution.
        measured: bool,
    },
}

/// Sender-side state of one ordered channel.
struct TxChannel {
    /// The sender's belief of the receiver's incarnation (frame `dst_inc`).
    peer_inc: u32,
    /// Next sequence number to assign (sequences start at 1).
    next_seq: u64,
    /// In-flight frames, ascending by sequence number.
    unacked: VecDeque<InFlight>,
    /// Sends waiting for window space.
    backlog: VecDeque<(Msg, bool)>,
    /// Cumulative count of SM messages the receiver acknowledged, across
    /// stream renumberings (each SM is counted once, when first acked).
    acked_sm_count: u64,
    /// Largest write clock among those acknowledged SMs.
    acked_sm_max_clock: u64,
}

struct InFlight {
    seq: u64,
    msg: Msg,
    measured: bool,
}

impl TxChannel {
    fn fresh(peer_inc: u32) -> Self {
        TxChannel {
            peer_inc,
            next_seq: 1,
            unacked: VecDeque::new(),
            backlog: VecDeque::new(),
            acked_sm_count: 0,
            acked_sm_max_clock: 0,
        }
    }
}

/// Receiver-side state of one ordered channel.
struct RxChannel {
    /// Last sender incarnation seen; lower frames are stale, a higher one
    /// restarts the stream.
    src_inc: u32,
    /// Highest contiguously received sequence number.
    next_expected: u64,
    /// Out-of-order arrivals, keyed by sequence number. Bounded by the
    /// sender's in-flight window.
    reorder: BTreeMap<u64, (Msg, bool)>,
}

impl RxChannel {
    fn fresh(src_inc: u32) -> Self {
        RxChannel {
            src_inc,
            next_expected: 0,
            reorder: BTreeMap::new(),
        }
    }
}

fn sm_clock(msg: &Msg) -> Option<u64> {
    match msg {
        Msg::Sm(sm) => Some(sm.value.writer.clock),
        _ => None,
    }
}

/// The transport state machine for all `n·(n−1)` ordered channels.
pub struct Transport {
    n: usize,
    tuning: TransportTuning,
    /// Per-site incarnation numbers (bumped at each recovery).
    inc: Vec<u32>,
    /// Per-channel stream generations — a simulator artifact identifying
    /// which stream a retransmission timer was armed for. Monotone across
    /// crashes (unlike the wiped channel state), so stale timers can never
    /// collide with a reborn stream's sequence numbers.
    gens: Vec<u32>,
    tx: Vec<TxChannel>,
    rx: Vec<RxChannel>,
}

impl Transport {
    /// A transport for `n` sites.
    pub fn new(n: usize, tuning: TransportTuning) -> Self {
        Transport {
            n,
            tuning,
            inc: vec![0; n],
            gens: vec![0; n * n],
            tx: (0..n * n).map(|_| TxChannel::fresh(0)).collect(),
            rx: (0..n * n).map(|_| RxChannel::fresh(0)).collect(),
        }
    }

    /// Current incarnation of `site`.
    pub fn incarnation(&self, site: SiteId) -> u32 {
        self.inc[site.index()]
    }

    fn idx(&self, from: SiteId, to: SiteId) -> usize {
        from.index() * self.n + to.index()
    }

    /// Retransmission timeout for the given attempt, with deterministic
    /// per-(channel, seq, attempt) jitter of up to a quarter of the base.
    /// Clamped to [`MAX_RTO_MICROS`]: the exponential must saturate, never
    /// wrap (a wrapped shift yields a near-zero timeout and a storm).
    fn rto(&self, from: SiteId, to: SiteId, seq: u64, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(self.tuning.rto_max_shift);
        let base = if shift >= u64::BITS {
            MAX_RTO_MICROS
        } else {
            self.tuning
                .rto_base_micros
                .checked_mul(1 << shift)
                .map_or(MAX_RTO_MICROS, |b| b.min(MAX_RTO_MICROS))
        };
        let mut key = (from.index() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(to.index() as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(seq)
            .wrapping_mul(0x94D0_49BB_1331_11EB)
            .wrapping_add(attempt as u64);
        key ^= key >> 31;
        key = key.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        key ^= key >> 32;
        // The jitter span is clamped alongside the base: an overflowing
        // tuning must not smuggle an unbounded addend past the RTO ceiling.
        let span = (self.tuning.rto_base_micros / RTO_JITTER_DIVISOR)
            .clamp(1, MAX_RTO_MICROS / RTO_JITTER_DIVISOR);
        SimDuration::from_micros(base.saturating_add(key % span))
    }

    fn emit_in_flight(
        &self,
        from: SiteId,
        to: SiteId,
        seq: u64,
        msg: Msg,
        measured: bool,
        cmds: &mut Vec<TransportCmd>,
    ) {
        let i = self.idx(from, to);
        cmds.push(TransportCmd::Emit {
            to,
            frame: Frame::Data {
                src_inc: self.inc[from.index()],
                dst_inc: self.tx[i].peer_inc,
                seq,
                msg,
            },
            measured,
            retransmit: false,
        });
        cmds.push(TransportCmd::Arm {
            to,
            stream_gen: self.gens[i],
            seq,
            attempt: 1,
            after: self.rto(from, to, seq, 1),
        });
    }

    /// Accept a protocol message for transmission `from → to`. Assigns a
    /// sequence number and emits immediately when the window has room,
    /// otherwise parks the message in the backlog.
    pub fn send(
        &mut self,
        from: SiteId,
        to: SiteId,
        msg: Msg,
        measured: bool,
    ) -> Vec<TransportCmd> {
        let i = self.idx(from, to);
        let mut cmds = Vec::new();
        if self.tx[i].unacked.len() < self.tuning.window {
            let seq = self.tx[i].next_seq;
            self.tx[i].next_seq += 1;
            self.tx[i].unacked.push_back(InFlight {
                seq,
                msg: msg.clone(),
                measured,
            });
            self.emit_in_flight(from, to, seq, msg, measured, &mut cmds);
        } else {
            self.tx[i].backlog.push_back((msg, measured));
        }
        cmds
    }

    /// A retransmission timer fired. Re-emits the frame with backoff if it
    /// is still unacked and belongs to the current stream generation.
    pub fn retransmit_check(
        &mut self,
        from: SiteId,
        to: SiteId,
        stream_gen: u32,
        seq: u64,
        attempt: u32,
    ) -> Vec<TransportCmd> {
        let i = self.idx(from, to);
        if self.gens[i] != stream_gen {
            return Vec::new(); // stream reborn since the timer was armed
        }
        let Some(f) = self.tx[i].unacked.iter().find(|f| f.seq == seq) else {
            return Vec::new(); // acked in the meantime
        };
        // Saturate: a frame stuck behind a long outage can accumulate an
        // unbounded attempt count; wrapping to 0 would reset the backoff
        // and re-arm the storm the cap exists to prevent.
        let next = attempt.saturating_add(1);
        vec![
            TransportCmd::Emit {
                to,
                frame: Frame::Data {
                    src_inc: self.inc[from.index()],
                    dst_inc: self.tx[i].peer_inc,
                    seq,
                    msg: f.msg.clone(),
                },
                measured: f.measured,
                retransmit: true,
            },
            TransportCmd::Arm {
                to,
                stream_gen,
                seq,
                attempt: next,
                after: self.rto(from, to, seq, next),
            },
        ]
    }

    /// A data or ack frame arrived at `to` from `from`. Returns handoffs
    /// (in-order deduplicated messages), acks, and any backlog frames the
    /// ack opened window space for. `measured` is the arriving frame's
    /// warm-up attribution. Sync frames are the simulator's business and
    /// must not be routed here.
    pub fn on_frame(
        &mut self,
        to: SiteId,
        from: SiteId,
        frame: Frame,
        measured: bool,
        metrics: &mut RunMetrics,
    ) -> Vec<TransportCmd> {
        match frame {
            Frame::Data {
                src_inc,
                dst_inc,
                seq,
                msg,
            } => self.on_data(to, from, src_inc, dst_inc, seq, msg, measured, metrics),
            Frame::Ack {
                epoch,
                src_inc,
                cum_seq,
            } => self.on_ack(to, from, epoch, src_inc, cum_seq),
            sync => panic!("sync frame routed into the transport: {sync:?}"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        to: SiteId,
        from: SiteId,
        src_inc: u32,
        dst_inc: u32,
        seq: u64,
        msg: Msg,
        measured: bool,
        metrics: &mut RunMetrics,
    ) -> Vec<TransportCmd> {
        if dst_inc != self.inc[to.index()] {
            // Addressed to a dead incarnation of this site.
            metrics.crash_drops += 1;
            return Vec::new();
        }
        let i = self.idx(from, to);
        if src_inc < self.rx[i].src_inc {
            // From a dead incarnation of the sender.
            metrics.crash_drops += 1;
            return Vec::new();
        }
        if src_inc > self.rx[i].src_inc {
            // The sender restarted its stream after a crash.
            self.rx[i] = RxChannel::fresh(src_inc);
        }
        let r = &mut self.rx[i];
        let mut cmds = Vec::new();
        if seq <= r.next_expected || r.reorder.contains_key(&seq) {
            // Fault-injected duplicate or spurious retransmission.
            metrics.dup_drops += 1;
        } else {
            r.reorder.insert(seq, (msg, measured));
            // Hand over the contiguous prefix, in order.
            while let Some((m, meas)) = r.reorder.remove(&(r.next_expected + 1)) {
                r.next_expected += 1;
                cmds.push(TransportCmd::Handoff {
                    msg: m,
                    measured: meas,
                });
            }
        }
        cmds.push(TransportCmd::Emit {
            to: from,
            frame: Frame::Ack {
                epoch: self.inc[to.index()],
                src_inc,
                cum_seq: r.next_expected,
            },
            measured: false,
            retransmit: false,
        });
        cmds
    }

    fn on_ack(
        &mut self,
        at: SiteId,
        from_peer: SiteId,
        epoch: u32,
        src_inc: u32,
        cum_seq: u64,
    ) -> Vec<TransportCmd> {
        let i = self.idx(at, from_peer);
        if epoch != self.tx[i].peer_inc || src_inc != self.inc[at.index()] {
            return Vec::new(); // stale ack from or for a dead incarnation
        }
        while self.tx[i].unacked.front().is_some_and(|f| f.seq <= cum_seq) {
            let f = self.tx[i].unacked.pop_front().expect("front checked");
            if let Some(clock) = sm_clock(&f.msg) {
                self.tx[i].acked_sm_count += 1;
                self.tx[i].acked_sm_max_clock = self.tx[i].acked_sm_max_clock.max(clock);
            }
        }
        // Opened window space admits backlog frames.
        let mut cmds = Vec::new();
        while self.tx[i].unacked.len() < self.tuning.window && !self.tx[i].backlog.is_empty() {
            let (msg, measured) = self.tx[i].backlog.pop_front().expect("nonempty");
            let seq = self.tx[i].next_seq;
            self.tx[i].next_seq += 1;
            self.tx[i].unacked.push_back(InFlight {
                seq,
                msg: msg.clone(),
                measured,
            });
            self.emit_in_flight(at, from_peer, seq, msg, measured, &mut cmds);
        }
        cmds
    }

    /// `site` fail-stops: all of its sender- and receiver-side channel
    /// state is volatile and lost. Peers' channels *to* the site survive —
    /// their backlog is what recovery renumbers and redelivers.
    pub fn crash(&mut self, site: SiteId) {
        for peer in SiteId::all(self.n) {
            if peer == site {
                continue;
            }
            let o = self.idx(site, peer);
            self.gens[o] += 1;
            self.tx[o] = TxChannel::fresh(self.inc[peer.index()]);
            let r = self.idx(peer, site);
            self.rx[r] = RxChannel::fresh(self.inc[peer.index()]);
        }
    }

    /// `site` restarts: bump its incarnation and re-seed its sender-side
    /// ack bookkeeping from the durable ledger, so that a *later* crash of
    /// some peer still gets an accurate cumulative SM count for the
    /// `site → peer` channels (the peer was fast-forwarded past exactly
    /// `ledger.own_row[peer]` writes at this recovery).
    pub fn revive(&mut self, site: SiteId, ledger: &causal_proto::OwnLedger) -> u32 {
        self.inc[site.index()] += 1;
        for peer in SiteId::all(self.n) {
            if peer == site {
                continue;
            }
            let o = self.idx(site, peer);
            self.gens[o] += 1;
            let mut t = TxChannel::fresh(self.inc[peer.index()]);
            t.acked_sm_count = ledger.own_row[peer.index()];
            t.acked_sm_max_clock = ledger.own_clock;
            self.tx[o] = t;
            let r = self.idx(peer, site);
            self.rx[r] = RxChannel::fresh(self.inc[peer.index()]);
        }
        self.inc[site.index()]
    }

    /// `site` left the membership view for good: wipe the channel state of
    /// **both** directions of every pair involving it and bump the stream
    /// generations, so armed retransmission timers toward the departed site
    /// die silently instead of re-emitting forever (which would keep the
    /// event loop alive past quiescence). Unlike [`Transport::crash`], the
    /// survivors' sender-side backlog toward the site is discarded too —
    /// there is no future incarnation to renumber it for.
    pub fn forget(&mut self, site: SiteId) {
        for peer in SiteId::all(self.n) {
            if peer == site {
                continue;
            }
            let o = self.idx(site, peer);
            self.gens[o] += 1;
            self.tx[o] = TxChannel::fresh(self.inc[peer.index()]);
            self.rx[o] = RxChannel::fresh(self.inc[site.index()]);
            let i = self.idx(peer, site);
            self.gens[i] += 1;
            self.tx[i] = TxChannel::fresh(self.inc[site.index()]);
            self.rx[i] = RxChannel::fresh(self.inc[peer.index()]);
        }
    }

    /// `true` when no frame is unacked or backlogged on any channel whose
    /// **both** endpoints are marked up in `up`. Channels touching a down
    /// (or departed) site are excluded: their traffic can never settle and
    /// is handled by the caller's crash/forget machinery. This is the
    /// transport half of the membership layer's quiescence test; the other
    /// half (frames already on the wire) is the event-heap scan.
    pub fn quiescent(&self, up: &[bool]) -> bool {
        assert_eq!(up.len(), self.n, "liveness mask must cover n");
        for a in 0..self.n {
            if !up[a] {
                continue;
            }
            for (b, &b_up) in up.iter().enumerate() {
                if a == b || !b_up {
                    continue;
                }
                let t = &self.tx[a * self.n + b];
                if !t.unacked.is_empty() || !t.backlog.is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// A live site (`me`) learns `peer` recovered with incarnation
    /// `new_inc`: snapshot the ack bookkeeping of the `me → peer` channel
    /// for the sync reply, then renumber the unacked + backlog SM stream
    /// into the new epoch (FM/RM frames are dropped — the blocked fetches
    /// they served are re-issued at the application layer). Returns the
    /// snapshot and the emissions for the renumbered in-window frames.
    pub fn peer_recovered(
        &mut self,
        me: SiteId,
        peer: SiteId,
        new_inc: u32,
    ) -> (PeerAckInfo, Vec<TransportCmd>) {
        self.inc[peer.index()] = self.inc[peer.index()].max(new_inc);
        let o = self.idx(me, peer);
        let ack = PeerAckInfo {
            sm_count: self.tx[o].acked_sm_count,
            sm_max_clock: self.tx[o].acked_sm_max_clock,
        };
        self.gens[o] += 1;
        let old = std::mem::replace(&mut self.tx[o], TxChannel::fresh(new_inc));
        self.tx[o].acked_sm_count = old.acked_sm_count;
        self.tx[o].acked_sm_max_clock = old.acked_sm_max_clock;
        // The receiver-side state for `peer → me` survives: the peer's new
        // incarnation restarts that stream and the src_inc check resets it
        // on first contact.
        let keep = old
            .unacked
            .into_iter()
            .map(|f| (f.msg, f.measured))
            .chain(old.backlog)
            .filter(|(m, _)| matches!(m, Msg::Sm(_)));
        let mut cmds = Vec::new();
        for (msg, measured) in keep {
            cmds.extend(self.send(me, peer, msg, measured));
        }
        (ack, cmds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal_proto::{Fm, Sm, SmMeta};
    use causal_types::{VarId, VersionedValue, WriteId};

    fn fm(var: u32) -> Msg {
        Msg::Fm(Fm { var: VarId(var) })
    }

    fn sm(site: u16, clock: u64) -> Msg {
        Msg::Sm(Sm {
            var: VarId(0),
            value: VersionedValue::new(WriteId::new(SiteId(site), clock), 1),
            meta: SmMeta::Crp {
                clock,
                log: std::sync::Arc::new(causal_clocks::CrpLog::new()),
            },
        })
    }

    fn emits(cmds: &[TransportCmd]) -> Vec<&Frame> {
        cmds.iter()
            .filter_map(|c| match c {
                TransportCmd::Emit { frame, .. } => Some(frame),
                _ => None,
            })
            .collect()
    }

    fn handoffs(cmds: &[TransportCmd]) -> Vec<&Msg> {
        cmds.iter()
            .filter_map(|c| match c {
                TransportCmd::Handoff { msg, .. } => Some(msg),
                _ => None,
            })
            .collect()
    }

    fn data_seq(frame: &Frame) -> u64 {
        match frame {
            Frame::Data { seq, .. } => *seq,
            other => panic!("expected a data frame, got {other:?}"),
        }
    }

    #[test]
    fn send_emits_and_arms() {
        let mut t = Transport::new(2, TransportTuning::default());
        let cmds = t.send(SiteId(0), SiteId(1), fm(3), true);
        assert_eq!(cmds.len(), 2);
        assert_eq!(data_seq(emits(&cmds)[0]), 1);
        assert!(matches!(
            cmds[1],
            TransportCmd::Arm {
                seq: 1,
                attempt: 1,
                ..
            }
        ));
    }

    #[test]
    fn in_order_frames_hand_off_immediately() {
        let mut t = Transport::new(2, TransportTuning::default());
        let mut m = RunMetrics::new();
        for k in 1..=3u64 {
            let frame = Frame::Data {
                src_inc: 0,
                dst_inc: 0,
                seq: k,
                msg: fm(k as u32),
            };
            let cmds = t.on_frame(SiteId(1), SiteId(0), frame, false, &mut m);
            assert_eq!(handoffs(&cmds).len(), 1);
            // Every arrival is cumulatively acked.
            assert!(matches!(
                emits(&cmds)[0],
                Frame::Ack { cum_seq, .. } if *cum_seq == k
            ));
        }
        assert_eq!(m.dup_drops, 0);
    }

    #[test]
    fn reordered_frames_buffer_until_the_gap_fills() {
        let mut t = Transport::new(2, TransportTuning::default());
        let mut m = RunMetrics::new();
        let f2 = Frame::Data {
            src_inc: 0,
            dst_inc: 0,
            seq: 2,
            msg: fm(2),
        };
        let cmds = t.on_frame(SiteId(1), SiteId(0), f2, false, &mut m);
        assert!(handoffs(&cmds).is_empty(), "seq 2 must wait for seq 1");
        assert!(matches!(emits(&cmds)[0], Frame::Ack { cum_seq: 0, .. }));
        let f1 = Frame::Data {
            src_inc: 0,
            dst_inc: 0,
            seq: 1,
            msg: fm(1),
        };
        let cmds = t.on_frame(SiteId(1), SiteId(0), f1, false, &mut m);
        let h = handoffs(&cmds);
        assert_eq!(h.len(), 2, "both frames release in order");
        assert!(matches!(h[0], Msg::Fm(f) if f.var == VarId(1)));
        assert!(matches!(h[1], Msg::Fm(f) if f.var == VarId(2)));
    }

    #[test]
    fn duplicates_are_dropped_but_reacked() {
        let mut t = Transport::new(2, TransportTuning::default());
        let mut m = RunMetrics::new();
        let f = Frame::Data {
            src_inc: 0,
            dst_inc: 0,
            seq: 1,
            msg: fm(1),
        };
        let cmds = t.on_frame(SiteId(1), SiteId(0), f.clone(), false, &mut m);
        assert_eq!(handoffs(&cmds).len(), 1);
        let cmds = t.on_frame(SiteId(1), SiteId(0), f, false, &mut m);
        assert!(handoffs(&cmds).is_empty());
        assert_eq!(m.dup_drops, 1);
        // The duplicate still triggers a (re-)ack so the sender can settle.
        assert!(matches!(emits(&cmds)[0], Frame::Ack { cum_seq: 1, .. }));
    }

    #[test]
    fn retransmit_until_acked_with_backoff() {
        let mut t = Transport::new(2, TransportTuning::default());
        t.send(SiteId(0), SiteId(1), fm(1), false);
        let cmds = t.retransmit_check(SiteId(0), SiteId(1), 0, 1, 1);
        assert!(matches!(
            cmds[0],
            TransportCmd::Emit {
                retransmit: true,
                ..
            }
        ));
        let TransportCmd::Arm { attempt, after, .. } = &cmds[1] else {
            panic!("expected rearm");
        };
        assert_eq!(*attempt, 2);
        // Attempt 2 backs off to at least double the base.
        assert!(after.as_nanos() >= 2 * 250_000_000);
        // Ack clears the frame: the timer then dies silently.
        let ack = Frame::Ack {
            epoch: 0,
            src_inc: 0,
            cum_seq: 1,
        };
        let mut m = RunMetrics::new();
        t.on_frame(SiteId(0), SiteId(1), ack, false, &mut m);
        assert!(t.retransmit_check(SiteId(0), SiteId(1), 0, 1, 2).is_empty());
    }

    #[test]
    fn backoff_saturates_at_the_cap_under_pathological_tunings() {
        // A tuning that would overflow `base << shift` must clamp to the
        // ceiling, not wrap to a near-zero timeout (retransmission storm).
        let pathological = TransportTuning {
            window: 32,
            rto_base_micros: u64::MAX / 2,
            rto_max_shift: u32::MAX,
        };
        let mut t = Transport::new(2, pathological);
        t.send(SiteId(0), SiteId(1), fm(1), false);
        for attempt in [1, 2, 63, 64, 1_000, u32::MAX] {
            let cmds = t.retransmit_check(SiteId(0), SiteId(1), 0, 1, attempt);
            let TransportCmd::Arm {
                attempt: next,
                after,
                ..
            } = &cmds[1]
            else {
                panic!("expected rearm at attempt {attempt}");
            };
            assert_eq!(*next, attempt.saturating_add(1), "attempt must saturate");
            let micros = after.as_nanos() / 1_000;
            assert!(
                micros >= MAX_RTO_MICROS,
                "attempt {attempt}: timeout collapsed to {micros} µs"
            );
        }
        // Default tuning: the cap coincides with `base << rto_max_shift`,
        // so deep backoff sits exactly at the ceiling (plus jitter < base/4).
        let mut t = Transport::new(2, TransportTuning::default());
        t.send(SiteId(0), SiteId(1), fm(1), false);
        let cmds = t.retransmit_check(SiteId(0), SiteId(1), 0, 1, 40);
        let TransportCmd::Arm { after, .. } = &cmds[1] else {
            panic!("expected rearm");
        };
        let micros = after.as_nanos() / 1_000;
        assert!(micros >= MAX_RTO_MICROS);
        assert!(micros < MAX_RTO_MICROS + 250_000 / RTO_JITTER_DIVISOR);
    }

    #[test]
    fn window_limits_in_flight_and_acks_release_backlog() {
        let tuning = TransportTuning {
            window: 2,
            ..TransportTuning::default()
        };
        let mut t = Transport::new(2, tuning);
        let mut emitted = 0;
        for k in 0..5 {
            emitted += emits(&t.send(SiteId(0), SiteId(1), fm(k), false)).len();
        }
        assert_eq!(emitted, 2, "only the window goes out");
        let ack = Frame::Ack {
            epoch: 0,
            src_inc: 0,
            cum_seq: 2,
        };
        let mut m = RunMetrics::new();
        let cmds = t.on_frame(SiteId(0), SiteId(1), ack, false, &mut m);
        let released = emits(&cmds);
        assert_eq!(released.len(), 2, "two slots freed, two backlog frames fly");
        assert_eq!(data_seq(released[0]), 3);
        assert_eq!(data_seq(released[1]), 4);
    }

    #[test]
    fn stale_epoch_frames_are_dropped() {
        let mut t = Transport::new(2, TransportTuning::default());
        let mut m = RunMetrics::new();
        let ledger = causal_proto::OwnLedger {
            site: SiteId(1),
            own_clock: 0,
            own_row: vec![0, 0],
            self_applied: 0,
        };
        t.crash(SiteId(1));
        assert_eq!(t.revive(SiteId(1), &ledger), 1);
        // A frame addressed to incarnation 0 arrives late: dropped.
        let f = Frame::Data {
            src_inc: 0,
            dst_inc: 0,
            seq: 1,
            msg: fm(1),
        };
        let cmds = t.on_frame(SiteId(1), SiteId(0), f, false, &mut m);
        assert!(cmds.is_empty());
        assert_eq!(m.crash_drops, 1);
    }

    #[test]
    fn stale_acks_for_a_previous_incarnation_are_ignored() {
        let mut t = Transport::new(2, TransportTuning::default());
        let mut m = RunMetrics::new();
        // Site 0 crashes and restarts its streams; an old ack arrives.
        t.send(SiteId(0), SiteId(1), fm(1), false);
        t.crash(SiteId(0));
        let ledger = causal_proto::OwnLedger {
            site: SiteId(0),
            own_clock: 0,
            own_row: vec![0, 0],
            self_applied: 0,
        };
        t.revive(SiteId(0), &ledger);
        let cmds = t.send(SiteId(0), SiteId(1), fm(2), false);
        let stream_gen = cmds
            .iter()
            .find_map(|c| match c {
                TransportCmd::Arm { stream_gen, .. } => Some(*stream_gen),
                _ => None,
            })
            .expect("send arms a timer");
        let stale = Frame::Ack {
            epoch: 0,
            src_inc: 0,
            cum_seq: 1,
        };
        t.on_frame(SiteId(0), SiteId(1), stale, false, &mut m);
        // The new-stream frame must still be guarded (not falsely acked).
        assert!(!t
            .retransmit_check(SiteId(0), SiteId(1), stream_gen, 1, 1)
            .is_empty());
    }

    #[test]
    fn peer_recovery_renumbers_the_sm_backlog_and_reports_acks() {
        let mut t = Transport::new(2, TransportTuning::default());
        let mut m = RunMetrics::new();
        // Site 0 sends three SMs and one FM to site 1; the first SM is
        // acked, the rest stay in flight.
        t.send(SiteId(0), SiteId(1), sm(0, 1), false);
        t.send(SiteId(0), SiteId(1), sm(0, 2), false);
        t.send(SiteId(0), SiteId(1), fm(9), false);
        t.send(SiteId(0), SiteId(1), sm(0, 3), false);
        let ack = Frame::Ack {
            epoch: 0,
            src_inc: 0,
            cum_seq: 1,
        };
        t.on_frame(SiteId(0), SiteId(1), ack, false, &mut m);
        // Site 1 crashes with state loss and recovers as incarnation 1.
        t.crash(SiteId(1));
        let (info, cmds) = t.peer_recovered(SiteId(0), SiteId(1), 1);
        assert_eq!(
            info,
            PeerAckInfo {
                sm_count: 1,
                sm_max_clock: 1
            }
        );
        let frames = emits(&cmds);
        // The two unacked SMs are renumbered 1, 2 in the new epoch; the FM
        // is dropped (its fetch is re-issued by the application layer).
        assert_eq!(frames.len(), 2);
        for (k, f) in frames.iter().enumerate() {
            let Frame::Data {
                dst_inc, seq, msg, ..
            } = f
            else {
                panic!("expected data");
            };
            assert_eq!(*dst_inc, 1);
            assert_eq!(*seq, k as u64 + 1);
            assert!(matches!(msg, Msg::Sm(_)));
        }
    }

    #[test]
    fn forget_kills_timers_and_clears_both_directions() {
        let mut t = Transport::new(3, TransportTuning::default());
        // Traffic in both directions involving site 1, left unacked.
        t.send(SiteId(0), SiteId(1), sm(0, 1), false);
        t.send(SiteId(1), SiteId(2), sm(1, 1), false);
        assert!(!t.quiescent(&[true, true, true]));
        t.forget(SiteId(1));
        // Armed timers for the wiped streams die silently (generation bump).
        assert!(t.retransmit_check(SiteId(0), SiteId(1), 0, 1, 1).is_empty());
        assert!(t.retransmit_check(SiteId(1), SiteId(2), 0, 1, 1).is_empty());
        // With the departed site out of the mask — or even still in it,
        // since its channels were wiped — the transport is quiescent.
        assert!(t.quiescent(&[true, false, true]));
        assert!(t.quiescent(&[true, true, true]));
    }

    #[test]
    fn quiescent_ignores_channels_touching_down_sites() {
        let mut t = Transport::new(3, TransportTuning::default());
        t.send(SiteId(0), SiteId(2), fm(1), false);
        assert!(!t.quiescent(&[true, true, true]));
        // The unsettled frame targets site 2: masking site 2 out excludes
        // the channel from the test.
        assert!(t.quiescent(&[true, true, false]));
        // Acking it settles the full mask too.
        let mut m = RunMetrics::new();
        let ack = Frame::Ack {
            epoch: 0,
            src_inc: 0,
            cum_seq: 1,
        };
        t.on_frame(SiteId(0), SiteId(2), ack, false, &mut m);
        assert!(t.quiescent(&[true, true, true]));
    }

    #[test]
    fn jitter_staggers_but_stays_bounded() {
        let t = Transport::new(4, TransportTuning::default());
        let a = t.rto(SiteId(0), SiteId(1), 1, 1);
        let b = t.rto(SiteId(0), SiteId(1), 2, 1);
        assert_ne!(a, b, "jitter must vary per sequence number");
        for seq in 0..50 {
            let d = t.rto(SiteId(2), SiteId(3), seq, 1).as_nanos();
            assert!((250_000_000..312_500_000).contains(&d));
        }
    }
}
