set terminal svg size 720,480
set output 'fig7.svg'
         set xlabel 'n (processes)'
set key left top
set grid
plot 'fig7.dat' using 1:2 with linespoints title 'Opt-Track-CRP SM', \
     'fig7.dat' using 1:3 with linespoints title 'optP SM', \
     'fig7.dat' using 1:4 with linespoints title 'optP analytic (209+10n)'
