//! HB-Track: a happened-before baseline exhibiting *false causality*.
//!
//! The paper's Contributions section credits Full-Track with "primarily
//! reduc\[ing\] the false causality in the partial replica system": under the
//! `→co` relation, *receiving* a message creates no causal dependency —
//! only reading the written value does, so piggybacked clocks are merged at
//! read time. HB-Track is the natural strawman this improves on: a matrix
//! protocol in the Raynal–Schiper–Toueg tradition that merges the
//! piggybacked matrix at **message receipt**, thereby tracking Lamport's
//! happened-before relation `→` — a superset of `→co`.
//!
//! HB-Track is still *correct* (`→co ⊂ →`, so every real dependency is
//! honored; the extra waits are all satisfiable because they refer to real
//! sends), and its messages have exactly Full-Track's size. What it costs
//! is **delay**: updates park behind dependencies that are not real, which
//! the `repro falseco` experiment quantifies via the apply-latency and
//! pending-buffer metrics. This protocol is an extension, not part of the
//! paper's measured set.

use crate::effect::{Effect, ReadResult};
use crate::factory::ProtocolKind;
use crate::msg::{Fm, Msg, Rm, RmMeta, Sm, SmMeta};
use crate::pending::{PendingQueues, ProtoTrace, ProtoTraceEvent};
use crate::reliable::{OwnLedger, PeerAckInfo, SyncState};
use crate::replication::Replication;
use crate::site::ProtocolSite;
use causal_clocks::MatrixClock;
use causal_types::{MetaSized, SiteId, SizeModel, VarId, VersionedValue, WriteId};
use std::collections::HashMap;
use std::sync::Arc;

/// A parked HB-Track update (shared matrix snapshot, as in Full-Track).
#[derive(Clone, Debug)]
struct PendingSm {
    var: VarId,
    value: VersionedValue,
    write: Arc<MatrixClock>,
}

#[derive(Clone)]
struct ApplyState {
    values: HashMap<VarId, VersionedValue>,
    apply: Vec<u64>,
    /// The local matrix — mutated on apply (receipt-merge), which is
    /// exactly the false-causality-inducing difference from Full-Track.
    write_clock: MatrixClock,
    applied_effects: Vec<Effect>,
}

/// One site running HB-Track.
#[derive(Clone)]
pub struct HbTrack {
    site: SiteId,
    n: usize,
    repl: Arc<dyn Replication>,
    state: ApplyState,
    own_writes: u64,
    pending: PendingQueues<PendingSm>,
    outstanding_fetch: Option<VarId>,
    trace: ProtoTrace,
}

impl HbTrack {
    /// Create the HB-Track state machine for `site`.
    pub fn new(site: SiteId, repl: Arc<dyn Replication>) -> Self {
        let n = repl.n();
        HbTrack {
            site,
            n,
            repl,
            state: ApplyState {
                values: HashMap::new(),
                apply: vec![0; n],
                write_clock: MatrixClock::new(n),
                applied_effects: Vec::new(),
            },
            own_writes: 0,
            pending: PendingQueues::new(n),
            outstanding_fetch: None,
            trace: ProtoTrace::default(),
        }
    }

    /// The same counting predicate as Full-Track — but because the matrix
    /// was merged at receipt, `W[l][k]` counts messages that happened
    /// before under `→`, not `→co`: the site waits for more than causality
    /// requires.
    fn ready(state: &ApplyState, me: SiteId, sender: SiteId, m: &PendingSm) -> bool {
        Self::blocking_dep(state, me, sender, m).is_none()
    }

    /// First unsatisfied dependency (witness for the trace); under HB
    /// semantics it may well be a *false* one — that is the point of the
    /// `falseco` experiment.
    fn blocking_dep(
        state: &ApplyState,
        me: SiteId,
        sender: SiteId,
        m: &PendingSm,
    ) -> Option<(SiteId, u64)> {
        let n = state.apply.len();
        for l in SiteId::all(n) {
            let required = m.write.get(l, me);
            let threshold = if l == sender {
                required.saturating_sub(1)
            } else {
                required
            };
            if state.apply[l.index()] < threshold {
                return Some((l, threshold));
            }
        }
        None
    }

    fn apply_update(state: &mut ApplyState, sender: SiteId, m: PendingSm) {
        state.values.insert(m.var, m.value);
        state.apply[sender.index()] += 1;
        state.applied_effects.push(Effect::Applied {
            var: m.var,
            write: m.value.writer,
        });
        // Receipt-merge: this is where HB-Track manufactures the false
        // dependencies that its later multicasts will impose on others.
        state.write_clock.merge_max(&m.write);
    }

    fn drain(&mut self) -> Vec<Effect> {
        let me = self.site;
        self.pending.drain(
            &mut self.state,
            |s, sender, m| Self::ready(s, me, sender, m),
            Self::apply_update,
        );
        std::mem::take(&mut self.state.applied_effects)
    }
}

impl ProtocolSite for HbTrack {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::HbTrack
    }

    fn site(&self) -> SiteId {
        self.site
    }

    fn n(&self) -> usize {
        self.n
    }

    fn write(&mut self, var: VarId, data: u64, payload_len: u32) -> (WriteId, Vec<Effect>) {
        self.own_writes += 1;
        let wid = WriteId::new(self.site, self.own_writes);
        let value = VersionedValue::with_payload(wid, data, payload_len);
        let dests = self.repl.replicas(var);
        for k in dests.iter() {
            self.state.write_clock.increment(self.site, k);
        }
        let snapshot = Arc::new(self.state.write_clock.clone());
        let mut effects = Vec::new();
        for k in dests.iter() {
            if k != self.site {
                effects.push(Effect::Send {
                    to: k,
                    msg: Msg::Sm(Sm {
                        var,
                        value,
                        meta: SmMeta::FullTrack {
                            write: Arc::clone(&snapshot),
                        },
                    }),
                });
            }
        }
        if dests.contains(self.site) {
            self.state.values.insert(var, value);
            self.state.apply[self.site.index()] += 1;
            effects.push(Effect::Applied { var, write: wid });
            effects.extend(self.drain());
        }
        (wid, effects)
    }

    fn read(&mut self, var: VarId) -> ReadResult {
        if self.repl.is_replicated_at(var, self.site) {
            // No read-time merge: receipt already merged (that is the whole
            // difference from Full-Track).
            ReadResult::Local(self.state.values.get(&var).copied())
        } else {
            assert!(self.outstanding_fetch.is_none());
            self.outstanding_fetch = Some(var);
            let target = self.repl.fetch_target(var, self.site);
            ReadResult::Fetch {
                target,
                msg: Msg::Fm(Fm { var }),
            }
        }
    }

    fn on_message(&mut self, from: SiteId, msg: Msg) -> Vec<Effect> {
        match msg {
            Msg::Sm(sm) => {
                let SmMeta::FullTrack { write } = sm.meta else {
                    panic!("HB-Track site received a foreign SM meta");
                };
                let m = PendingSm {
                    var: sm.var,
                    value: sm.value,
                    write,
                };
                if self.trace.enabled() {
                    if let Some((dep_site, dep_clock)) =
                        Self::blocking_dep(&self.state, self.site, from, &m)
                    {
                        self.trace.emit(ProtoTraceEvent::Buffered {
                            origin: m.value.writer.site,
                            clock: m.value.writer.clock,
                            var: m.var,
                            dep_site,
                            dep_clock,
                        });
                    }
                }
                self.pending.push(from, m);
                self.drain()
            }
            Msg::Fm(fm) => {
                // The server answers with its whole matrix (HB semantics:
                // the reply transfers the server's knowledge wholesale).
                let value = self.state.values.get(&fm.var).copied();
                let meta = RmMeta::FullTrack(Some(Arc::new(self.state.write_clock.clone())));
                vec![Effect::Send {
                    to: from,
                    msg: Msg::Rm(Rm {
                        var: fm.var,
                        value,
                        meta,
                    }),
                }]
            }
            Msg::Rm(rm) => {
                assert_eq!(self.outstanding_fetch.take(), Some(rm.var));
                let RmMeta::FullTrack(meta) = rm.meta else {
                    panic!("HB-Track site received a foreign RM meta");
                };
                if let Some(w) = &meta {
                    self.state.write_clock.merge_max(w);
                }
                vec![Effect::FetchDone {
                    var: rm.var,
                    value: rm.value,
                }]
            }
            Msg::Batch(_) => panic!("batches are unbatched by the transport before delivery"),
        }
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn local_meta_size(&self, model: &SizeModel) -> u64 {
        self.state.write_clock.meta_size(model)
    }

    fn value_of(&self, var: VarId) -> Option<VersionedValue> {
        self.state.values.get(&var).copied()
    }

    fn own_ledger(&self) -> OwnLedger {
        // HB-Track's own matrix row counts only own writes (peers' matrices
        // can never know more of this row than the site itself), so the row
        // snapshot is ledger material just as in Full-Track.
        OwnLedger {
            site: self.site,
            own_clock: self.own_writes,
            own_row: SiteId::all(self.n)
                .map(|d| self.state.write_clock.get(self.site, d))
                .collect(),
            self_applied: self.state.apply[self.site.index()],
        }
    }

    fn drop_var(&mut self, var: VarId) {
        self.state.values.remove(&var);
    }

    fn restore_own_ledger(&mut self, ledger: &OwnLedger) {
        self.own_writes = self.own_writes.max(ledger.own_clock);
        for d in SiteId::all(self.n) {
            let row = self
                .state
                .write_clock
                .get(self.site, d)
                .max(ledger.own_row[d.index()]);
            self.state.write_clock.set(self.site, d, row);
        }
        let applied = &mut self.state.apply[self.site.index()];
        *applied = (*applied).max(ledger.self_applied);
    }

    fn crash_volatile(&mut self) -> (OwnLedger, usize) {
        let ledger = self.own_ledger();
        self.state.write_clock = MatrixClock::new(self.n);
        for d in SiteId::all(self.n) {
            self.state
                .write_clock
                .set(self.site, d, ledger.own_row[d.index()]);
        }
        self.state.values.clear();
        self.state.apply = vec![0; self.n];
        self.state.apply[self.site.index()] = ledger.self_applied;
        self.state.applied_effects.clear();
        let mut dropped = 0;
        for s in SiteId::all(self.n) {
            dropped += self.pending.clear_sender(s);
        }
        self.outstanding_fetch = None;
        (ledger, dropped)
    }

    fn note_peer_recovery(&mut self, peer: SiteId, ledger: &OwnLedger) -> (Vec<Effect>, usize) {
        let dropped = self.pending.clear_sender(peer);
        let me = self.site.index();
        self.state.apply[peer.index()] = self.state.apply[peer.index()].max(ledger.own_row[me]);
        (self.drain(), dropped)
    }

    fn export_sync(&self, requester: SiteId) -> SyncState {
        let vars = self
            .state
            .values
            .iter()
            .filter(|(var, _)| self.repl.is_replicated_at(**var, requester))
            .map(|(var, value)| (*var, *value))
            .collect();
        SyncState::HbTrack {
            clock: self.state.write_clock.clone(),
            vars,
        }
    }

    fn install_sync(&mut self, sources: &[(SiteId, PeerAckInfo, SyncState)]) {
        let mut best: HashMap<VarId, VersionedValue> = HashMap::new();
        for (peer, ack, state) in sources {
            let SyncState::HbTrack { clock, vars } = state else {
                panic!("HB-Track site received a foreign sync snapshot");
            };
            // Never regress: a WAL-replayed site may already count
            // logged-but-unacked deliveries beyond the acked prefix.
            let apply = &mut self.state.apply[peer.index()];
            *apply = (*apply).max(ack.sm_count);
            // Receipt-merge protocol: merging peers' matrices is exactly the
            // HB knowledge transfer an RM reply performs, just n-wide.
            self.state.write_clock.merge_max(clock);
            for (var, value) in vars {
                let replace = best.get(var).is_none_or(|b| {
                    (value.writer.clock, value.writer.site) > (b.writer.clock, b.writer.site)
                });
                if replace {
                    best.insert(*var, *value);
                }
            }
        }
        for (var, value) in best {
            // Install only values strictly newer than the local replica (a
            // delta snapshot must not roll a WAL-replayed state back).
            let newer = self.state.values.get(&var).is_none_or(|cur| {
                (value.writer.clock, value.writer.site) > (cur.writer.clock, cur.writer.site)
            });
            if newer {
                self.state.values.insert(var, value);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ProtocolSite> {
        Box::new(self.clone())
    }

    fn abort_fetch(&mut self, var: VarId) {
        assert_eq!(
            self.outstanding_fetch.take(),
            Some(var),
            "abort of a fetch that is not outstanding"
        );
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_trace(&mut self) -> Vec<ProtoTraceEvent> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::FullReplication;

    fn system(n: usize) -> Vec<HbTrack> {
        let repl = Arc::new(FullReplication::new(n));
        SiteId::all(n)
            .map(|s| HbTrack::new(s, repl.clone()))
            .collect()
    }

    fn sends(effects: &[Effect]) -> Vec<(SiteId, Sm)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    msg: Msg::Sm(sm),
                } => Some((*to, sm.clone())),
                _ => None,
            })
            .collect()
    }

    fn applied(effects: &[Effect]) -> Vec<WriteId> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Applied { write, .. } => Some(*write),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn receipt_alone_creates_dependency_false_causality() {
        // The scenario where Full-Track does NOT park (its
        // `no_false_dependency_without_read` test): s1 receives x's update
        // but never reads it, then writes y. Under HB-Track, s2 must wait
        // for x anyway — the false dependency.
        let mut sys = system(3);
        let (w_x, e0) = sys[0].write(VarId(0), 1, 0);
        let sm_x_to_1 = sends(&e0)
            .iter()
            .find(|(t, _)| *t == SiteId(1))
            .unwrap()
            .1
            .clone();
        let sm_x_to_2 = sends(&e0)
            .iter()
            .find(|(t, _)| *t == SiteId(2))
            .unwrap()
            .1
            .clone();
        sys[1].on_message(SiteId(0), Msg::Sm(sm_x_to_1));
        // No read!
        let (w_y, e1) = sys[1].write(VarId(1), 2, 0);
        let sm_y_to_2 = sends(&e1)
            .iter()
            .find(|(t, _)| *t == SiteId(2))
            .unwrap()
            .1
            .clone();
        let eff = sys[2].on_message(SiteId(1), Msg::Sm(sm_y_to_2));
        assert!(
            applied(&eff).is_empty(),
            "HB-Track must park y behind the unread x (false causality)"
        );
        let eff = sys[2].on_message(SiteId(0), Msg::Sm(sm_x_to_2));
        assert_eq!(applied(&eff), vec![w_x, w_y]);
    }

    #[test]
    fn real_dependencies_still_enforced() {
        let mut sys = system(3);
        let (w1, e0) = sys[0].write(VarId(0), 1, 0);
        let sm_to_1 = sends(&e0)
            .iter()
            .find(|(t, _)| *t == SiteId(1))
            .unwrap()
            .1
            .clone();
        let sm_to_2 = sends(&e0)
            .iter()
            .find(|(t, _)| *t == SiteId(2))
            .unwrap()
            .1
            .clone();
        sys[1].on_message(SiteId(0), Msg::Sm(sm_to_1));
        sys[1].read(VarId(0));
        let (w2, e1) = sys[1].write(VarId(1), 2, 0);
        let sm_y = sends(&e1)
            .iter()
            .find(|(t, _)| *t == SiteId(2))
            .unwrap()
            .1
            .clone();
        let eff = sys[2].on_message(SiteId(1), Msg::Sm(sm_y));
        assert!(applied(&eff).is_empty());
        let eff = sys[2].on_message(SiteId(0), Msg::Sm(sm_to_2));
        assert_eq!(applied(&eff), vec![w1, w2]);
    }

    #[test]
    fn message_sizes_equal_full_track() {
        let model = SizeModel::java_like();
        let mut sys = system(5);
        let (_w, e) = sys[0].write(VarId(0), 1, 0);
        let sm = Msg::Sm(sends(&e)[0].1.clone());
        assert_eq!(sm.meta_size(&model), 209 + 10 * 25);
    }
}
