//! Live-concurrency correctness: the identical protocol objects that the
//! simulator drives, running on real threads with real channels, must
//! produce causally consistent executions — for every interleaving the OS
//! scheduler happens to produce.

use causal_checker::check;
use causal_proto::ProtocolKind;
use causal_runtime::{run_threaded, RuntimeConfig};
use causal_types::MsgKind;

#[test]
fn threaded_full_replication_protocols_are_causal() {
    for kind in [ProtocolKind::OptTrackCrp, ProtocolKind::OptP] {
        for seed in 0..3 {
            let cfg = RuntimeConfig::fast(kind, 4, 0.5, seed, 40);
            let out = run_threaded(&cfg);
            assert_eq!(out.final_pending, 0, "{kind} seed {seed}");
            let v = check(&out.history);
            assert!(v.protocol_clean(), "{kind} seed {seed}: {:?}", v.examples);
            // Full replication + local reads: strict causal memory.
            assert!(v.strictly_clean(), "{kind} seed {seed}: {:?}", v.examples);
        }
    }
}

#[test]
fn threaded_partial_replication_protocols_are_causal() {
    for kind in [ProtocolKind::FullTrack, ProtocolKind::OptTrack] {
        for seed in 0..3 {
            let cfg = RuntimeConfig::fast(kind, 6, 0.5, seed, 40);
            let out = run_threaded(&cfg);
            assert_eq!(out.final_pending, 0, "{kind} seed {seed}");
            let v = check(&out.history);
            assert!(v.protocol_clean(), "{kind} seed {seed}: {:?}", v.examples);
        }
    }
}

#[test]
fn threaded_history_is_complete() {
    let cfg = RuntimeConfig::fast(ProtocolKind::OptTrackCrp, 4, 0.5, 9, 30);
    let out = run_threaded(&cfg);
    assert_eq!(out.history.total_ops(), 4 * 30, "every op recorded");
    // Every write applies everywhere under full replication.
    let writes = out
        .history
        .ops()
        .iter()
        .flatten()
        .filter(|o| matches!(o, causal_checker::OpRecord::Write { .. }))
        .count();
    assert_eq!(out.history.total_applies(), writes * 4);
}

#[test]
fn threaded_metrics_account_for_traffic() {
    let cfg = RuntimeConfig::fast(ProtocolKind::OptTrack, 6, 0.3, 4, 40);
    let out = run_threaded(&cfg);
    // Partial replication at w=0.3 generates all three message kinds.
    assert!(out.metrics.all.count(MsgKind::Sm) > 0);
    assert_eq!(
        out.metrics.all.count(MsgKind::Fm),
        out.metrics.all.count(MsgKind::Rm)
    );
    assert!(out.elapsed.as_millis() > 0);
}

#[test]
fn threaded_write_heavy_stress() {
    // Maximum write contention: every op is a write, everything multicasts.
    let cfg = RuntimeConfig::fast(ProtocolKind::OptP, 8, 1.0, 5, 50);
    let out = run_threaded(&cfg);
    assert_eq!(out.final_pending, 0);
    let v = check(&out.history);
    assert!(v.strictly_clean(), "{:?}", v.examples);
    // 8 sites × 50 writes × 7 peers.
    assert_eq!(out.metrics.all.count(MsgKind::Sm), 8 * 50 * 7);
}
