//! Workload parameters.

use causal_types::{Error, Result};

/// How target variables are drawn.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum VarDistribution {
    /// Uniform over the `q` variables — the paper's setting.
    Uniform,
    /// Zipf with exponent `theta` (rank-1 most popular). An extension used
    /// by the `ablation_zipf` bench; `theta = 0` degenerates to uniform.
    Zipf {
        /// Skew exponent (`≈ 0.99` models typical key-value workloads).
        theta: f64,
    },
    /// A two-tier hotspot: accesses hit a small "hot" prefix of the
    /// variable space with high probability and the cold remainder
    /// uniformly otherwise. Unlike Zipf's smooth decay this concentrates
    /// conflicts on a handful of variables — the worst case for
    /// `LastWriteOn` slot churn in the soak scenarios.
    Hotspot {
        /// Fraction of the variable space that is hot (`0 < hot_frac ≤ 1`;
        /// at least one variable is always hot).
        hot_frac: f64,
        /// Probability an access targets the hot set.
        hot_prob: f64,
    },
}

/// Parameters of one simulated workload.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WorkloadParams {
    /// Number of processes / sites (`n`).
    pub n: usize,
    /// Number of shared variables (`q`). The paper uses 100.
    pub q: usize,
    /// Operations per process. The paper runs `600·n` events in total, i.e.
    /// 600 per process.
    pub events_per_process: usize,
    /// Probability that an operation is a write: `w_rate = w / (w + r)`.
    pub w_rate: f64,
    /// Minimum inter-event delay, milliseconds (paper: 5).
    pub min_delay_ms: u64,
    /// Maximum inter-event delay, milliseconds (paper: 2005).
    pub max_delay_ms: u64,
    /// Fraction of each process's leading events excluded from measurement
    /// (paper: 0.15).
    pub warmup_frac: f64,
    /// Variable selection distribution.
    pub var_dist: VarDistribution,
    /// Modeled payload length attached to each written value, bytes. Not
    /// counted as metadata; used by payload-aware analyses (§V-C).
    pub payload_len: u32,
    /// RNG seed. Runs with equal seeds generate identical schedules.
    pub seed: u64,
}

impl WorkloadParams {
    /// The paper's benchmark setting for `n` processes at a given write
    /// rate: `q = 100`, 600 events per process, delays U[5 ms, 2005 ms],
    /// 15 % warm-up, uniform variable choice.
    pub fn paper(n: usize, w_rate: f64, seed: u64) -> Self {
        WorkloadParams {
            n,
            q: 100,
            events_per_process: 600,
            w_rate,
            min_delay_ms: 5,
            max_delay_ms: 2005,
            warmup_frac: 0.15,
            var_dist: VarDistribution::Uniform,
            payload_len: 0,
            seed,
        }
    }

    /// A miniature variant for fast tests: same shape, far fewer events.
    pub fn small(n: usize, w_rate: f64, seed: u64) -> Self {
        WorkloadParams {
            events_per_process: 60,
            ..Self::paper(n, w_rate, seed)
        }
    }

    /// Soak-test base setting: the paper's shape (`q = 100`) but a dense
    /// operation stream (delays U[1 ms, 10 ms] instead of U[5 ms, 2005 ms])
    /// so multi-million-event memory soaks stay tractable in virtual time.
    /// Callers set `events_per_process` and `var_dist` per scenario.
    pub fn soak(n: usize, w_rate: f64, seed: u64) -> Self {
        WorkloadParams {
            min_delay_ms: 1,
            max_delay_ms: 10,
            ..Self::paper(n, w_rate, seed)
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(Error::InvalidConfig("n must be positive".into()));
        }
        if self.q == 0 {
            return Err(Error::InvalidConfig("q must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.w_rate) {
            return Err(Error::InvalidConfig(format!(
                "w_rate must be in [0, 1], got {}",
                self.w_rate
            )));
        }
        if self.min_delay_ms > self.max_delay_ms {
            return Err(Error::InvalidConfig(
                "min_delay_ms must not exceed max_delay_ms".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.warmup_frac) {
            return Err(Error::InvalidConfig("warmup_frac must be in [0, 1)".into()));
        }
        match self.var_dist {
            VarDistribution::Uniform => {}
            VarDistribution::Zipf { theta } => {
                if theta.is_nan() || theta < 0.0 {
                    return Err(Error::InvalidConfig("zipf theta must be ≥ 0".into()));
                }
            }
            VarDistribution::Hotspot { hot_frac, hot_prob } => {
                if !(hot_frac > 0.0 && hot_frac <= 1.0) {
                    return Err(Error::InvalidConfig(format!(
                        "hotspot hot_frac must be in (0, 1], got {hot_frac}"
                    )));
                }
                if !(0.0..=1.0).contains(&hot_prob) || hot_prob.is_nan() {
                    return Err(Error::InvalidConfig(format!(
                        "hotspot hot_prob must be in [0, 1], got {hot_prob}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of leading events per process excluded from measurement.
    pub fn warmup_events(&self) -> usize {
        (self.events_per_process as f64 * self.warmup_frac).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_iv() {
        let p = WorkloadParams::paper(40, 0.5, 1);
        assert_eq!(p.q, 100);
        assert_eq!(p.events_per_process, 600);
        assert_eq!(p.min_delay_ms, 5);
        assert_eq!(p.max_delay_ms, 2005);
        assert_eq!(p.warmup_events(), 90, "15% of 600");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut p = WorkloadParams::paper(5, 0.5, 1);
        p.w_rate = 1.5;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::paper(5, 0.5, 1);
        p.n = 0;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::paper(5, 0.5, 1);
        p.min_delay_ms = 10_000;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::paper(5, 0.5, 1);
        p.var_dist = VarDistribution::Zipf { theta: f64::NAN };
        assert!(p.validate().is_err());
    }

    #[test]
    fn soak_preset_is_dense_but_paper_shaped() {
        let p = WorkloadParams::soak(8, 0.5, 1);
        assert_eq!(p.q, 100);
        assert_eq!((p.min_delay_ms, p.max_delay_ms), (1, 10));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn hotspot_validation() {
        let mut p = WorkloadParams::paper(5, 0.5, 1);
        p.var_dist = VarDistribution::Hotspot {
            hot_frac: 0.1,
            hot_prob: 0.9,
        };
        assert!(p.validate().is_ok());
        p.var_dist = VarDistribution::Hotspot {
            hot_frac: 0.0,
            hot_prob: 0.9,
        };
        assert!(p.validate().is_err(), "empty hot set");
        p.var_dist = VarDistribution::Hotspot {
            hot_frac: 1.5,
            hot_prob: 0.9,
        };
        assert!(p.validate().is_err(), "hot_frac above 1");
        p.var_dist = VarDistribution::Hotspot {
            hot_frac: 0.1,
            hot_prob: 1.5,
        };
        assert!(p.validate().is_err(), "hot_prob above 1");
        p.var_dist = VarDistribution::Hotspot {
            hot_frac: 0.1,
            hot_prob: f64::NAN,
        };
        assert!(p.validate().is_err(), "NaN hot_prob");
    }
}
