//! # causal-clocks
//!
//! The causality-tracking data structures of the four protocols compared in
//! *"Performance of Causal Consistency Algorithms for Partially Replicated
//! Systems"* (Hsu & Kshemkalyani, 2016):
//!
//! * [`MatrixClock`] — the `Write[n][n]` matrix of **Full-Track**
//!   (`Write[j][k]` = number of updates sent by process `j` to site `k` that
//!   causally happened before, under the `→co` relation);
//! * [`VectorClock`] — the size-`n` `Write` vector of **optP**
//!   (Baldoni et al.);
//! * [`DestSet`] — a compact set of destination sites, the `Dests` field of
//!   a KS log entry;
//! * [`Log`] / [`LogEntry`] — the **Opt-Track** local log
//!   `{⟨j, clock_j, Dests⟩}` with the paper's explicit and implicit pruning
//!   conditions (MERGE / PURGE, conditions 1 and 2 of §III-B);
//! * [`CrpLog`] — the **Opt-Track-CRP** log of `⟨j, clock_j⟩` 2-tuples.
//!
//! Every structure implements [`causal_types::MetaSized`] so the simulator
//! can account for piggybacked meta-data bytes exactly as the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod crplog;
pub mod dests;
pub mod log;
pub mod matrix;
pub mod reference;
pub mod stability;
pub mod vector;

pub use crplog::{CrpDelta, CrpLog};
pub use dests::DestSet;
pub use log::{Log, LogDelta, LogEntry, PruneConfig};
pub use matrix::{MatrixClock, MatrixDelta};
pub use reference::NaiveLog;
pub use stability::{NaiveStability, StabilityTracker};
pub use vector::{VectorClock, VectorDelta};
