//! Application operations and schedules.

use crate::ids::{SiteId, VarId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation within a run: the issuing site and the
/// zero-based position of the operation in that site's local history `h_i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId {
    /// Site whose application process issued the operation.
    pub site: SiteId,
    /// Zero-based index in the site's local history.
    pub seq: u32,
}

impl OpId {
    /// Construct an operation identifier.
    pub fn new(site: SiteId, seq: u32) -> Self {
        OpId { site, seq }
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.site, self.seq)
    }
}

/// The two kinds of application operation in the causal memory model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// `w(x)v` — write synthetic data `data` to variable `var`.
    Write {
        /// Target variable.
        var: VarId,
        /// Synthetic application data.
        data: u64,
    },
    /// `r(x)` — read variable `var`.
    Read {
        /// Source variable.
        var: VarId,
    },
}

impl OpKind {
    /// The variable this operation touches.
    pub fn var(&self) -> VarId {
        match *self {
            OpKind::Write { var, .. } | OpKind::Read { var } => var,
        }
    }

    /// `true` for write operations.
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write { .. })
    }
}

/// An operation with its scheduled virtual issue time.
///
/// The paper drives every application process from a pre-generated temporal
/// schedule ("a event schedule planned in advance ... randomly generated",
/// §IV-C); the simulator and threaded runtime both consume these.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// Earliest virtual time at which the operation may be issued. If the
    /// process is still blocked in a remote fetch at this time, the operation
    /// is issued when the fetch returns.
    pub at: SimTime,
    /// The operation itself.
    pub kind: OpKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_accessors() {
        let w = OpKind::Write {
            var: VarId(3),
            data: 9,
        };
        let r = OpKind::Read { var: VarId(5) };
        assert!(w.is_write());
        assert!(!r.is_write());
        assert_eq!(w.var(), VarId(3));
        assert_eq!(r.var(), VarId(5));
    }

    #[test]
    fn op_id_ordering_follows_program_order() {
        let a = OpId::new(SiteId(1), 0);
        let b = OpId::new(SiteId(1), 1);
        assert!(a < b);
        assert_eq!(format!("{a:?}"), "s1#0");
    }
}
