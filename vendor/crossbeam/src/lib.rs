//! Offline stand-in for `crossbeam`: the unbounded MPSC channel API this
//! workspace uses, backed by `std::sync::mpsc` (whose `Sender` has been
//! `Sync + Clone` since Rust 1.72, covering every sharing pattern the
//! runtime relies on).

#![forbid(unsafe_code)]

/// Multi-producer single-consumer FIFO channels.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn fifo_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
    }
}
