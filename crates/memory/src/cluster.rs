//! A synchronous in-process cluster.
//!
//! `LocalCluster` wires `n` protocol sites together with zero-latency FIFO
//! delivery: every message is delivered and processed before the issuing
//! operation returns. This gives a deterministic, totally ordered execution
//! that is convenient for examples, tutorials and protocol unit tests. The
//! discrete-event simulator in `causal-simnet` is the instrument for the
//! paper's experiments — it models latency and reordering across senders;
//! this cluster intentionally does not.

use causal_proto::{
    build_site, Effect, ProtocolConfig, ProtocolKind, ProtocolSite, ReadResult, Replication,
};
use causal_types::{MetaSized, MsgKind, SiteId, SizeModel, VarId, VersionedValue, WriteId};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::placement::Placement;

/// An observable event of a cluster execution.
#[derive(Clone, PartialEq, Debug)]
pub enum ClusterEvent {
    /// `write` was applied at `site`'s replica of `var`.
    Applied {
        /// The applying site.
        site: SiteId,
        /// The updated variable.
        var: VarId,
        /// The applied write.
        write: WriteId,
    },
    /// A message of kind `kind` travelled `from → to` carrying `meta_bytes`
    /// of causality meta-data.
    Message {
        /// Sending site.
        from: SiteId,
        /// Receiving site.
        to: SiteId,
        /// SM / FM / RM.
        kind: MsgKind,
        /// Meta-data bytes under the cluster's size model.
        meta_bytes: u64,
    },
}

/// `n` protocol sites with synchronous, zero-latency FIFO delivery.
pub struct LocalCluster {
    sites: Vec<Box<dyn ProtocolSite>>,
    model: SizeModel,
    events: Vec<ClusterEvent>,
    /// The currently fetched value, parked here by the delivery loop when a
    /// `FetchDone` effect surfaces.
    fetched: Option<(SiteId, VarId, Option<VersionedValue>)>,
}

impl LocalCluster {
    /// Build a cluster of `placement.n()` sites all running `kind`.
    pub fn new(kind: ProtocolKind, placement: Arc<Placement>, cfg: ProtocolConfig) -> Self {
        let n = placement.n();
        let repl: Arc<dyn causal_proto::Replication> = placement;
        let sites = SiteId::all(n)
            .map(|s| build_site(kind, s, repl.clone(), cfg))
            .collect();
        LocalCluster {
            sites,
            model: SizeModel::default(),
            events: Vec::new(),
            fetched: None,
        }
    }

    /// Use a non-default size model for the `Message` events.
    pub fn with_size_model(mut self, model: SizeModel) -> Self {
        self.model = model;
        self
    }

    /// Number of sites.
    pub fn n(&self) -> usize {
        self.sites.len()
    }

    /// Issue `w(var)data` at `site`, delivering all resulting messages
    /// before returning.
    pub fn write(&mut self, site: SiteId, var: VarId, data: u64) -> WriteId {
        let (wid, effects) = self.sites[site.index()].write(var, data, 0);
        self.route(site, effects);
        wid
    }

    /// Issue `r(var)` at `site`. Remote fetches complete synchronously.
    pub fn read(&mut self, site: SiteId, var: VarId) -> Option<VersionedValue> {
        match self.sites[site.index()].read(var) {
            ReadResult::Local(v) => v,
            ReadResult::Fetch { target, msg } => {
                self.route(site, vec![Effect::Send { to: target, msg }]);
                let (who, which, value) = self
                    .fetched
                    .take()
                    .expect("synchronous delivery must complete the fetch");
                assert_eq!((who, which), (site, var), "fetch answered out of order");
                value
            }
        }
    }

    /// Deliver queued effects breadth-first until quiescence.
    fn route(&mut self, origin: SiteId, effects: Vec<Effect>) {
        let mut queue: VecDeque<(SiteId, Effect)> =
            effects.into_iter().map(|e| (origin, e)).collect();
        while let Some((from, effect)) = queue.pop_front() {
            match effect {
                Effect::Send { to, msg } => {
                    self.events.push(ClusterEvent::Message {
                        from,
                        to,
                        kind: msg.kind(),
                        meta_bytes: msg.meta_size(&self.model),
                    });
                    let next = self.sites[to.index()].on_message(from, msg);
                    queue.extend(next.into_iter().map(|e| (to, e)));
                }
                Effect::Applied { var, write } => {
                    self.events.push(ClusterEvent::Applied {
                        site: from,
                        var,
                        write,
                    });
                }
                Effect::FetchDone { var, value } => {
                    assert!(self.fetched.is_none(), "one outstanding fetch at a time");
                    self.fetched = Some((from, var, value));
                }
            }
        }
    }

    /// Drain the recorded events.
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Direct access to a site (diagnostics, assertions).
    pub fn site(&self, s: SiteId) -> &dyn ProtocolSite {
        self.sites[s.index()].as_ref()
    }

    /// Total parked updates across all sites. In a synchronous cluster this
    /// must be zero between operations — delivery is instantaneous and the
    /// activation predicate can always be satisfied immediately.
    pub fn total_pending(&self) -> usize {
        self.sites.iter().map(|s| s.pending_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;

    fn cluster(kind: ProtocolKind, n: usize, partial: bool) -> LocalCluster {
        let placement = if partial {
            Arc::new(Placement::paper_partial(n).unwrap())
        } else {
            Arc::new(Placement::full(n).unwrap())
        };
        LocalCluster::new(kind, placement, ProtocolConfig::default())
    }

    #[test]
    fn write_then_read_everywhere_full_replication() {
        for kind in [ProtocolKind::OptTrackCrp, ProtocolKind::OptP] {
            let mut c = cluster(kind, 5, false);
            let w = c.write(SiteId(0), VarId(3), 42);
            for s in SiteId::all(5) {
                let v = c.read(s, VarId(3)).expect("value replicated everywhere");
                assert_eq!(v.writer, w);
                assert_eq!(v.data, 42);
            }
            assert_eq!(c.total_pending(), 0);
        }
    }

    #[test]
    fn write_then_read_everywhere_partial_replication() {
        for kind in [ProtocolKind::FullTrack, ProtocolKind::OptTrack] {
            let mut c = cluster(kind, 10, true);
            let w = c.write(SiteId(0), VarId(7), 7);
            for s in SiteId::all(10) {
                let v = c.read(s, VarId(7)).expect("local or fetched");
                assert_eq!(v.writer, w, "{kind} at {s}");
            }
            assert_eq!(c.total_pending(), 0);
        }
    }

    #[test]
    fn message_counts_match_paper_formulas_for_writes() {
        // Opt-Track write: (p-1) SMs if the writer replicates the variable,
        // p otherwise.
        let n = 10;
        let mut c = cluster(ProtocolKind::OptTrack, n, true);
        let placement = Placement::paper_partial(n).unwrap();
        let p = placement.p();
        for v in 0..20u32 {
            c.take_events();
            let writer = SiteId(0);
            c.write(writer, VarId(v), 1);
            let sms = c
                .take_events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        ClusterEvent::Message {
                            kind: MsgKind::Sm,
                            ..
                        }
                    )
                })
                .count();
            let expected = if placement.replicas(VarId(v)).contains(writer) {
                p - 1
            } else {
                p
            };
            assert_eq!(sms, expected, "var {v}");
        }
    }

    #[test]
    fn remote_read_generates_fm_and_rm() {
        let n = 10;
        let mut c = cluster(ProtocolKind::OptTrack, n, true);
        c.write(SiteId(0), VarId(0), 5);
        c.take_events();
        // Var 0 replicas are sites {0,1,2}; site 5 must fetch.
        let v = c.read(SiteId(5), VarId(0)).unwrap();
        assert_eq!(v.data, 5);
        let kinds: Vec<MsgKind> = c
            .take_events()
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::Message { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![MsgKind::Fm, MsgKind::Rm]);
    }

    #[test]
    fn local_read_generates_no_messages() {
        let n = 10;
        let mut c = cluster(ProtocolKind::OptTrack, n, true);
        c.write(SiteId(0), VarId(0), 5);
        c.take_events();
        c.read(SiteId(1), VarId(0)); // site 1 replicates var 0
        assert!(c.take_events().is_empty());
    }

    #[test]
    fn clustered_placement_works_end_to_end() {
        let placement = Arc::new(Placement::new(PlacementKind::Clustered, 9, 3).unwrap());
        let mut c = LocalCluster::new(ProtocolKind::OptTrack, placement, ProtocolConfig::default());
        let w = c.write(SiteId(4), VarId(11), 9);
        for s in SiteId::all(9) {
            assert_eq!(c.read(s, VarId(11)).unwrap().writer, w);
        }
    }

    #[test]
    fn causal_chain_visible_in_apply_events() {
        let mut c = cluster(ProtocolKind::OptTrackCrp, 3, false);
        let w1 = c.write(SiteId(0), VarId(0), 1);
        c.read(SiteId(1), VarId(0));
        let w2 = c.write(SiteId(1), VarId(1), 2);
        // At every site, w1 must have been applied before w2.
        let events = c.take_events();
        for s in SiteId::all(3) {
            let order: Vec<WriteId> = events
                .iter()
                .filter_map(|e| match e {
                    ClusterEvent::Applied { site, write, .. } if *site == s => Some(*write),
                    _ => None,
                })
                .collect();
            let i1 = order.iter().position(|w| *w == w1).unwrap();
            let i2 = order.iter().position(|w| *w == w2).unwrap();
            assert!(i1 < i2, "site {s} applied out of causal order");
        }
    }
}
