//! Multi-seed simulation sweeps: a work-queue of per-seed run units with
//! in-memory and persistent caching and an optional parallel worker pool.
//!
//! Each `(protocol, mode, n, w_rate)` cell expands into one run unit per
//! seed. Units execute on [`crate::pool::run_indexed`] — sequentially for
//! `jobs = 1`, on scoped worker threads otherwise — and are folded back
//! into [`CellStats`] **in seed order** with the exact floating-point
//! operation sequence of the sequential code, so every figure and CSV is
//! byte-identical whatever the job count. A [`crate::cache::DiskCache`]
//! can additionally persist finished cells across invocations.

use crate::cache::{CacheKey, DiskCache};
use crate::pool;
use causal_metrics::MessageStats;
use causal_proto::ProtocolKind;
use causal_simnet::{run, SimConfig};
use causal_types::{MsgKind, SizeModel};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

/// Run scale: paper-size or reduced for smoke tests and CI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// 600 events per process, 3 seeds per cell — the paper's setting
    /// ("multiple runs were performed ... only the mean is represented").
    Paper,
    /// 120 events per process, 2 seeds — an order of magnitude faster,
    /// same qualitative shape.
    Quick,
}

impl Scale {
    /// Events per process at this scale.
    pub fn events(self) -> usize {
        match self {
            Scale::Paper => 600,
            Scale::Quick => 120,
        }
    }

    /// Seeds averaged per parameter cell.
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Paper => 3,
            Scale::Quick => 2,
        }
    }
}

/// Whether a protocol runs under the paper's partial placement or full
/// replication in a given experiment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// `p = round(0.3·n)`, even placement.
    Partial,
    /// `p = n`.
    Full,
}

impl Mode {
    /// Stable name used in the persistent cache key.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Partial => "partial",
            Mode::Full => "full",
        }
    }
}

/// Seed-averaged measurements of one `(protocol, mode, n, w_rate)` cell.
#[derive(Clone, Debug)]
pub struct CellStats {
    /// Mean measured (post-warm-up) message count per run.
    pub total_count: f64,
    /// Mean measured meta-data bytes per run, all message kinds.
    pub total_bytes: f64,
    /// Mean per-message meta bytes, by kind (`None` if no such messages).
    pub avg_bytes: [Option<f64>; 3],
    /// Mean measured byte total per kind.
    pub kind_bytes: [f64; 3],
    /// Mean piggybacked-structure entry count per SM.
    pub sm_entries: f64,
    /// Mean measured writes / reads per run.
    pub writes: f64,
    /// Mean measured reads per run.
    pub reads: f64,
    /// Mean receipt→apply latency over received updates, milliseconds.
    pub apply_latency_ms: f64,
    /// Largest pending-buffer population seen in any run.
    pub max_pending: usize,
    /// Mean per-site causality-metadata storage at quiescence, bytes.
    pub local_meta_mean: f64,
}

impl CellStats {
    /// Average meta bytes per message of `kind`, defaulting to 0.
    pub fn avg(&self, kind: MsgKind) -> f64 {
        self.avg_bytes[kind.index()].unwrap_or(0.0)
    }

    /// Every field as raw bits, for bitwise identity checks (parallel vs
    /// sequential, cold vs warm cache).
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut v = vec![self.total_count.to_bits(), self.total_bytes.to_bits()];
        for a in self.avg_bytes {
            v.push(a.map_or(u64::MAX, f64::to_bits));
            v.push(a.is_some() as u64);
        }
        for k in self.kind_bytes {
            v.push(k.to_bits());
        }
        v.extend([
            self.sm_entries.to_bits(),
            self.writes.to_bits(),
            self.reads.to_bits(),
            self.apply_latency_ms.to_bits(),
            self.max_pending as u64,
            self.local_meta_mean.to_bits(),
        ]);
        v
    }

    fn zero() -> Self {
        CellStats {
            total_count: 0.0,
            total_bytes: 0.0,
            avg_bytes: [None; 3],
            kind_bytes: [0.0; 3],
            sm_entries: 0.0,
            writes: 0.0,
            reads: 0.0,
            apply_latency_ms: 0.0,
            max_pending: 0,
            local_meta_mean: 0.0,
        }
    }
}

/// The raw yield of one `(protocol, mode, n, w_rate, seed)` run unit —
/// exactly the quantities the sequential per-seed loop accumulated, so
/// folding a slice of these in seed order reproduces its arithmetic.
#[derive(Clone, Debug)]
pub struct SeedRun {
    measured: MessageStats,
    sm_entries_mean: f64,
    writes: f64,
    reads: f64,
    apply_latency_ms: f64,
    max_pending: usize,
    local_meta_mean: f64,
}

type Key = (
    ProtocolKind,
    Mode,
    usize,
    u64, /* w_rate in per-mille */
);

/// A cell's full parameters, kept alongside the [`Key`] because re-running
/// needs the original `w_rate` as the exact f64 the caller passed.
type CellParams = (ProtocolKind, Mode, usize, f64);

/// A cached sweep runner: each `(protocol, mode, n, w_rate)` cell is
/// simulated once per seed and reused across figures — within one
/// invocation via a memory cache, across invocations via an optional
/// persistent [`DiskCache`].
pub struct Sweep {
    scale: Scale,
    cache: HashMap<Key, CellStats>,
    /// Base seed; cell seeds derive from it deterministically.
    pub base_seed: u64,
    jobs: usize,
    disk: Option<DiskCache>,
    /// In planning mode, `cell` records its parameters here (first-seen
    /// order, deduplicated) instead of simulating.
    plan: Option<(Vec<CellParams>, HashSet<Key>)>,
    dummy: CellStats,
}

impl Sweep {
    /// New sweep at the given scale: one job, no persistent cache.
    pub fn new(scale: Scale) -> Self {
        Sweep {
            scale,
            cache: HashMap::new(),
            base_seed: 0xCA05_A11B,
            jobs: 1,
            disk: None,
            plan: None,
            dummy: CellStats::zero(),
        }
    }

    /// The scale this sweep runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Set the worker-thread count for run-unit execution (≥ 1).
    pub fn set_jobs(&mut self, jobs: usize) {
        assert!(jobs >= 1, "jobs must be at least 1");
        self.jobs = jobs;
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attach (or detach, with `None`) a persistent cell cache rooted at
    /// `dir`.
    pub fn set_disk_cache(&mut self, dir: Option<PathBuf>) {
        self.disk = dir.map(DiskCache::new);
    }

    /// The paper's `n` grid.
    pub const N_GRID: [usize; 5] = [5, 10, 20, 30, 40];
    /// The paper's extended `n` grid for Table III / Figs. 6–8.
    pub const N_GRID_FULL: [usize; 6] = [5, 10, 20, 30, 35, 40];
    /// The paper's write-rate grid.
    pub const W_GRID: [f64; 3] = [0.2, 0.5, 0.8];

    fn key_of(protocol: ProtocolKind, mode: Mode, n: usize, w_rate: f64) -> Key {
        (protocol, mode, n, (w_rate * 1000.0).round() as u64)
    }

    fn cache_key(&self, protocol: ProtocolKind, mode: Mode, n: usize, w_rate: f64) -> CacheKey {
        CacheKey {
            protocol: protocol.to_string(),
            mode: mode.name(),
            n,
            w_per_mille: (w_rate * 1000.0).round() as u64,
            events: self.scale.events(),
            seeds: self.scale.seeds(),
            base_seed: self.base_seed,
            // The paper presets pin the calibration; fingerprint it so a
            // calibration change can never resurrect stale cells.
            size_model: format!("{:?}", SizeModel::java_like()),
        }
    }

    /// Simulate (or fetch) one cell. In planning mode this only records
    /// the request and returns zeroed placeholder stats.
    pub fn cell(
        &mut self,
        protocol: ProtocolKind,
        mode: Mode,
        n: usize,
        w_rate: f64,
    ) -> &CellStats {
        let key = Self::key_of(protocol, mode, n, w_rate);
        if let Some((order, seen)) = &mut self.plan {
            if !self.cache.contains_key(&key) && seen.insert(key) {
                order.push((protocol, mode, n, w_rate));
            }
            return &self.dummy;
        }
        let scale = self.scale;
        let base_seed = self.base_seed;
        let jobs = self.jobs;
        let ckey = self.cache_key(protocol, mode, n, w_rate);
        let disk = self.disk.as_ref();
        match self.cache.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                let stats = disk.and_then(|d| d.load(&ckey)).unwrap_or_else(|| {
                    let stats =
                        Self::compute_cell(scale, base_seed, jobs, protocol, mode, n, w_rate);
                    if let Some(d) = disk {
                        d.store(&ckey, &stats);
                    }
                    stats
                });
                v.insert(stats)
            }
        }
    }

    /// Enter planning mode: subsequent [`Sweep::cell`] calls record their
    /// parameters (returning placeholder stats) instead of simulating, so
    /// a cheap dry pass over the figure generators discovers every cell a
    /// selection needs.
    pub fn plan_begin(&mut self) {
        self.plan = Some((Vec::new(), HashSet::new()));
    }

    /// `true` while in planning mode.
    pub fn planning(&self) -> bool {
        self.plan.is_some()
    }

    /// Leave planning mode and execute every recorded cell: disk-cached
    /// cells load directly; the rest expand into per-seed run units on the
    /// worker pool and aggregate in deterministic `(cell, seed)` order.
    pub fn plan_execute(&mut self) {
        let Some((order, _)) = self.plan.take() else {
            return;
        };
        let mut to_run: Vec<CellParams> = Vec::new();
        for params in order {
            let (protocol, mode, n, w_rate) = params;
            let key = Self::key_of(protocol, mode, n, w_rate);
            if self.cache.contains_key(&key) {
                continue;
            }
            let ckey = self.cache_key(protocol, mode, n, w_rate);
            if let Some(stats) = self.disk.as_ref().and_then(|d| d.load(&ckey)) {
                self.cache.insert(key, stats);
                continue;
            }
            to_run.push(params);
        }
        let seeds = self.scale.seeds() as usize;
        let (scale, base_seed) = (self.scale, self.base_seed);
        // `--jobs 1` bypasses the worker pool entirely: no unit vector, no
        // shared-cursor indirection — a plain loop in the exact fold order.
        // (BENCH_PR5 measured the pooled width-1 pass at 0.975× sequential;
        // planning must never be slower than not planning.)
        let runs: Vec<SeedRun> = if self.jobs <= 1 {
            to_run
                .iter()
                .flat_map(|&(protocol, mode, n, w_rate)| {
                    (0..seeds as u64).map(move |s| {
                        Self::run_seed(scale, base_seed, protocol, mode, n, w_rate, s)
                    })
                })
                .collect()
        } else {
            let units: Vec<(CellParams, u64)> = to_run
                .iter()
                .flat_map(|&p| (0..seeds as u64).map(move |s| (p, s)))
                .collect();
            pool::run_indexed(self.jobs, units.len(), |i| {
                let ((protocol, mode, n, w_rate), s) = units[i];
                Self::run_seed(scale, base_seed, protocol, mode, n, w_rate, s)
            })
        };
        for (ci, &(protocol, mode, n, w_rate)) in to_run.iter().enumerate() {
            let stats = Self::aggregate(&runs[ci * seeds..(ci + 1) * seeds]);
            if let Some(d) = self.disk.as_ref() {
                d.store(&self.cache_key(protocol, mode, n, w_rate), &stats);
            }
            self.cache
                .insert(Self::key_of(protocol, mode, n, w_rate), stats);
        }
    }

    fn compute_cell(
        scale: Scale,
        base_seed: u64,
        jobs: usize,
        protocol: ProtocolKind,
        mode: Mode,
        n: usize,
        w_rate: f64,
    ) -> CellStats {
        let seeds = scale.seeds() as usize;
        let runs = pool::run_indexed(jobs, seeds, |s| {
            Self::run_seed(scale, base_seed, protocol, mode, n, w_rate, s as u64)
        });
        Self::aggregate(&runs)
    }

    /// Execute one run unit.
    fn run_seed(
        scale: Scale,
        base_seed: u64,
        protocol: ProtocolKind,
        mode: Mode,
        n: usize,
        w_rate: f64,
        s: u64,
    ) -> SeedRun {
        // Seed depends on (n, w_rate, replica mode) but NOT on the
        // protocol: Table IV compares protocols on identical schedules.
        let seed = base_seed
            .wrapping_add(s)
            .wrapping_add((n as u64) << 16)
            .wrapping_add(((w_rate * 1000.0) as u64) << 32);
        let mut cfg = match mode {
            Mode::Partial => SimConfig::paper_partial(protocol, n, w_rate, seed),
            Mode::Full => SimConfig::paper_full(protocol, n, w_rate, seed),
        };
        cfg.workload.events_per_process = scale.events();
        let r = run(&cfg);
        assert_eq!(r.final_pending, 0, "simulation must reach quiescence");
        SeedRun {
            measured: r.metrics.measured,
            sm_entries_mean: r.metrics.sm_entries.mean(),
            writes: r.metrics.writes as f64,
            reads: r.metrics.reads as f64,
            apply_latency_ms: r.metrics.apply_latency_ns.mean() / 1e6,
            max_pending: r.metrics.max_pending,
            local_meta_mean: r.final_local_meta.iter().sum::<u64>() as f64
                / r.final_local_meta.len().max(1) as f64,
        }
    }

    /// Fold per-seed results, in seed order, with the same operation
    /// sequence the sequential loop used.
    fn aggregate(runs: &[SeedRun]) -> CellStats {
        let mut agg = MessageStats::new();
        let mut sm_entries = 0.0;
        let mut writes = 0.0;
        let mut reads = 0.0;
        let mut apply_latency = 0.0;
        let mut max_pending = 0usize;
        let mut local_meta = 0.0;
        for r in runs {
            agg.merge(&r.measured);
            sm_entries += r.sm_entries_mean;
            writes += r.writes;
            reads += r.reads;
            apply_latency += r.apply_latency_ms;
            max_pending = max_pending.max(r.max_pending);
            local_meta += r.local_meta_mean;
        }
        let sf = runs.len() as f64;
        CellStats {
            total_count: agg.total_count() as f64 / sf,
            total_bytes: agg.total_bytes() as f64 / sf,
            avg_bytes: [
                agg.avg_bytes(MsgKind::Sm),
                agg.avg_bytes(MsgKind::Fm),
                agg.avg_bytes(MsgKind::Rm),
            ],
            kind_bytes: [
                agg.bytes(MsgKind::Sm) as f64 / sf,
                agg.bytes(MsgKind::Fm) as f64 / sf,
                agg.bytes(MsgKind::Rm) as f64 / sf,
            ],
            sm_entries: sm_entries / sf,
            writes: writes / sf,
            reads: reads / sf,
            apply_latency_ms: apply_latency / sf,
            max_pending,
            local_meta_mean: local_meta / sf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_cached() {
        let mut sw = Sweep::new(Scale::Quick);
        let a = sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count;
        let b = sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count;
        assert_eq!(a, b);
        assert_eq!(sw.cache.len(), 1);
    }

    #[test]
    fn avg_bytes_indexing_matches_kind() {
        let mut sw = Sweep::new(Scale::Quick);
        let c = sw
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.5)
            .clone();
        assert!(c.avg(MsgKind::Sm) > 0.0);
        assert!(c.avg(MsgKind::Fm) > 0.0);
        assert!(c.avg(MsgKind::Rm) > c.avg(MsgKind::Fm));
    }

    #[test]
    fn schedules_match_across_protocols_same_cell() {
        // The seed derivation ignores the protocol: write/read counts of
        // Opt-Track (partial) and Opt-Track-CRP (full) cells coincide.
        let mut sw = Sweep::new(Scale::Quick);
        let a = sw
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.5)
            .writes;
        let b = sw
            .cell(ProtocolKind::OptTrackCrp, Mode::Full, 5, 0.5)
            .writes;
        assert_eq!(a, b, "Table IV replays identical schedules");
    }

    /// The acceptance property of the parallel engine: `jobs = 4` produces
    /// bit-for-bit the `jobs = 1` stats, both through direct `cell` calls
    /// and through the plan/execute path.
    #[test]
    fn parallel_cells_bitwise_match_sequential() {
        let grid: [(ProtocolKind, Mode); 4] = [
            (ProtocolKind::FullTrack, Mode::Partial),
            (ProtocolKind::OptTrack, Mode::Partial),
            (ProtocolKind::OptTrackCrp, Mode::Full),
            (ProtocolKind::OptP, Mode::Full),
        ];
        let mut seq = Sweep::new(Scale::Quick);
        let mut par = Sweep::new(Scale::Quick);
        par.set_jobs(4);
        par.plan_begin();
        for &(p, m) in &grid {
            let _ = par.cell(p, m, 10, 0.5);
        }
        assert!(par.planning());
        par.plan_execute();
        assert!(!par.planning());
        for &(p, m) in &grid {
            let s = seq.cell(p, m, 10, 0.5).fingerprint();
            let q = par.cell(p, m, 10, 0.5).fingerprint();
            assert_eq!(s, q, "{p} {m:?}: parallel stats must be bit-identical");
        }
    }

    /// Cold run == warm (disk-cache) rerun == uncached run, bit for bit.
    #[test]
    fn disk_cache_roundtrip_is_bit_exact() {
        let dir = std::env::temp_dir().join(format!("causal-sweep-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cold = Sweep::new(Scale::Quick);
        cold.set_disk_cache(Some(dir.clone()));
        let a = cold
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.2)
            .fingerprint();

        let mut warm = Sweep::new(Scale::Quick);
        warm.set_disk_cache(Some(dir.clone()));
        let b = warm
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.2)
            .fingerprint();

        let mut uncached = Sweep::new(Scale::Quick);
        let c = uncached
            .cell(ProtocolKind::OptTrack, Mode::Partial, 5, 0.2)
            .fingerprint();

        assert_eq!(a, b, "warm load must reproduce the cold run bit-for-bit");
        assert_eq!(a, c, "cached and uncached runs must agree bit-for-bit");
        assert!(
            std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) > 0,
            "cache directory must contain the stored cell"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn planning_records_without_running() {
        let mut sw = Sweep::new(Scale::Quick);
        sw.plan_begin();
        let zero = sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count;
        assert_eq!(zero, 0.0, "planning returns placeholder stats");
        let dup = sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count;
        assert_eq!(dup, 0.0);
        let (order, _) = sw.plan.as_ref().unwrap();
        assert_eq!(order.len(), 1, "duplicate requests plan once");
        sw.plan_execute();
        assert_eq!(sw.cache.len(), 1, "execution fills the cell");
        assert!(sw.cell(ProtocolKind::OptP, Mode::Full, 5, 0.5).total_count > 0.0);
    }
}
