//! Replica-placement abstraction.

use causal_clocks::DestSet;
use causal_types::{SiteId, VarId};

/// Where each shared variable is replicated.
///
/// The protocols only need three facts about placement: the destination set
/// of a write (the sites replicating the variable), whether a variable is
/// local to a site, and which replica serves a given site's remote fetches
/// (the paper's "predesignated site"). Concrete placement strategies —
/// even round-robin with replication factor `p`, full replication, hashed,
/// primary-region — live in `causal-memory`.
pub trait Replication: Send + Sync {
    /// Number of sites in the system.
    fn n(&self) -> usize;

    /// The set of sites replicating `var` — the destination set of every
    /// write to `var`. Must be non-empty and stable for the lifetime of a
    /// run.
    fn replicas(&self, var: VarId) -> DestSet;

    /// The fixed replica that serves `site`'s remote reads of `var`.
    /// Must be a member of `replicas(var)`. Only called when
    /// `!self.is_replicated_at(var, site)`.
    fn fetch_target(&self, var: VarId, site: SiteId) -> SiteId;

    /// Whether `site` holds a replica of `var`.
    fn is_replicated_at(&self, var: VarId, site: SiteId) -> bool {
        self.replicas(var).contains(site)
    }

    /// Whether this placement is full replication (every variable at every
    /// site). Opt-Track-CRP and optP require this.
    fn is_full(&self) -> bool;
}

/// Trivial full replication over `n` sites — every variable everywhere.
/// Remote fetches never occur. Useful for protocol unit tests without
/// pulling in `causal-memory`.
#[derive(Clone, Copy, Debug)]
pub struct FullReplication {
    n: usize,
}

impl FullReplication {
    /// Full replication over `n` sites.
    pub fn new(n: usize) -> Self {
        FullReplication { n }
    }
}

impl Replication for FullReplication {
    fn n(&self) -> usize {
        self.n
    }

    fn replicas(&self, _var: VarId) -> DestSet {
        DestSet::full(self.n)
    }

    fn fetch_target(&self, _var: VarId, site: SiteId) -> SiteId {
        // Every variable is local; a fetch target is never needed. Answer
        // the site itself to keep the contract total.
        site
    }

    fn is_full(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replication_covers_all_sites() {
        let r = FullReplication::new(7);
        let d = r.replicas(VarId(3));
        assert_eq!(d.len(), 7);
        assert!(r.is_full());
        assert!(r.is_replicated_at(VarId(0), SiteId(6)));
    }
}
